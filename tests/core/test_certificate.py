"""Certificate object: serialization and size accounting."""

import pytest

from repro.core.certificate import Certificate
from repro.errors import CertificateError


@pytest.fixture()
def certificate(certified_setup):
    return certified_setup["issuer"].certified[-1].certificate


def test_encode_decode_roundtrip(certificate):
    decoded = Certificate.decode(certificate.encode())
    assert decoded == certificate


def test_decode_rejects_garbage():
    with pytest.raises(CertificateError):
        Certificate.decode(b"junk")
    with pytest.raises(CertificateError):
        Certificate.decode(b"{}")


def test_size_bytes_matches_encoding(certificate):
    assert certificate.size_bytes() == len(certificate.encode())


def test_certificate_size_is_constant(certified_setup):
    """Every block's certificate has the same serialized size — the
    constant-storage claim of Fig. 7a."""
    sizes = {
        certified.certificate.size_bytes()
        for certified in certified_setup["issuer"].certified
    }
    assert len(sizes) == 1


def test_index_certificates_have_same_shape(certified_setup):
    certified = certified_setup["issuer"].certified[-1]
    for cert in certified.index_certificates.values():
        assert abs(cert.size_bytes() - certified.certificate.size_bytes()) < 16
