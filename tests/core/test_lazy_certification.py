"""The lazy (Ocall-per-cell) certification path."""

import pytest

from repro.chain.builder import ChainBuilder
from repro.chain.genesis import make_genesis
from repro.chain.transaction import sign_transaction
from repro.core.issuer import (
    CertificateIssuer,
    attach_lazy_proof_service,
    gen_cert_lazy,
)
from repro.crypto import generate_keypair
from repro.errors import EnclaveError, ProofError
from repro.sgx.attestation import AttestationService
from tests.conftest import fresh_vm


@pytest.fixture()
def world():
    keypair = generate_keypair(b"lazy-tests")
    builder = ChainBuilder(difficulty_bits=4, network="lazynet")
    nonce = [0]

    def kv(key, value):
        tx = sign_transaction(keypair.private, nonce[0], "kvstore", "put", (key, value))
        nonce[0] += 1
        return tx

    builder.add_block([kv("a", "1"), kv("b", "2")])
    builder.add_block([kv("a", "3"), kv("c", "4")])
    genesis, state = make_genesis(network="lazynet")
    issuer = CertificateIssuer(
        genesis, state, fresh_vm(), builder.pow,
        ias=AttestationService(seed=b"lazy-ias"), key_seed=b"lazy-key",
    )
    attach_lazy_proof_service(issuer)
    return builder, issuer


def test_lazy_matches_eager_signature(world):
    """Both paths sign the same digest with the same deterministic
    nonce, so the signatures are byte-identical."""
    builder, issuer = world
    lazy = gen_cert_lazy(issuer, builder.blocks[1])
    eager, _, _ = issuer.gen_cert(builder.blocks[1])
    assert lazy.sig == eager.sig
    assert lazy.dig == eager.dig


def test_lazy_pays_per_cell_transitions(world):
    builder, issuer = world
    before = issuer.enclave.ledger.ocalls
    gen_cert_lazy(issuer, builder.blocks[1])
    fetched = issuer.enclave.ledger.ocalls - before
    # Block 1 touches cells a and b (reads + writes collapse per cell).
    assert fetched == 2


def test_lazy_without_service_fails():
    keypair = generate_keypair(b"lazy-tests-2")
    builder = ChainBuilder(difficulty_bits=4, network="lazynet")
    builder.add_block(
        [sign_transaction(keypair.private, 0, "kvstore", "put", ("x", "y"))]
    )
    genesis, state = make_genesis(network="lazynet")
    issuer = CertificateIssuer(
        genesis, state, fresh_vm(), builder.pow,
        ias=AttestationService(seed=b"lazy-ias-2"), key_seed=b"lazy-key-2",
    )
    with pytest.raises(EnclaveError):
        gen_cert_lazy(issuer, builder.blocks[1])


def test_lazy_rejects_lying_proof_service(world):
    """A malicious host serving forged values is caught per fetch."""
    builder, issuer = world

    def lying(key: bytes):
        return b"forged", issuer.node.state.prove(key)

    issuer.enclave.register_ocall("fetch_state_proof", lying)
    with pytest.raises(ProofError):
        gen_cert_lazy(issuer, builder.blocks[1])


def test_lazy_rejects_stale_proofs(world):
    """A host replaying proofs captured before an earlier block's commit
    (i.e. against a stale state root) must be caught: the enclave
    verifies every fetched proof against blk_prev's state root, and a
    pre-commit proof no longer matches it."""
    builder, issuer = world
    state = issuer.node.state
    stale: dict[bytes, tuple] = {}
    real = lambda key: (state.get_raw(key), state.prove(key))  # noqa: E731

    def capturing(key: bytes):
        response = real(key)
        stale[key] = response
        return response

    issuer.enclave.register_ocall("fetch_state_proof", capturing)
    gen_cert_lazy(issuer, builder.blocks[1])  # captures pre-commit proofs
    issuer.process_block(builder.blocks[1])

    def replaying(key: bytes):
        # Cell "a" is touched by both blocks: its captured proof is now
        # stale.  Fresh cells fall through to the live state.
        return stale.get(key) or real(key)

    issuer.enclave.register_ocall("fetch_state_proof", replaying)
    assert any(key in stale for key in _touched(issuer, builder.blocks[2]))
    with pytest.raises(ProofError):
        gen_cert_lazy(issuer, builder.blocks[2])


def _touched(issuer, block):
    result = issuer.node.executor.execute(
        issuer.node.state, list(block.transactions)
    )
    return result.touched_keys()


def test_lazy_rejects_proof_for_wrong_key(world):
    """A response carrying another cell's (valid!) proof must fail the
    requested key's verification."""
    builder, issuer = world
    state = issuer.node.state

    def misdirecting(key: bytes):
        other = bytes(32) if key != bytes(32) else bytes([1]) * 32
        return state.get_raw(other), state.prove(other)

    issuer.enclave.register_ocall("fetch_state_proof", misdirecting)
    with pytest.raises(ProofError):
        gen_cert_lazy(issuer, builder.blocks[1])


def test_lazy_ocall_accounting_per_block(world):
    """Bookkeeping: one Ocall per distinct touched cell, per block, and
    exactly one Ecall per lazy certification — recorded even with the
    cost model disabled (the autouse test fixture disables charging)."""
    builder, issuer = world
    ledger = issuer.enclave.ledger
    for block, cells in ((builder.blocks[1], 2), (builder.blocks[2], 2)):
        ocalls, ecalls = ledger.ocalls, ledger.ecalls
        gen_cert_lazy(issuer, block)
        assert ledger.ocalls - ocalls == cells
        assert ledger.ecalls - ecalls == 1
        issuer.process_block(block)


def test_lazy_chains_across_blocks(world):
    builder, issuer = world
    first = gen_cert_lazy(issuer, builder.blocks[1])
    issuer.process_block(builder.blocks[1])
    assert issuer.latest_certificate.sig == first.sig
    second = gen_cert_lazy(issuer, builder.blocks[2])
    assert second.dig == builder.blocks[2].header.header_hash()
