"""The Certificate Issuer: Alg. 1 and the certification schemes."""

import pytest

from repro.core.digest import block_digest, index_digest
from repro.errors import BlockValidationError


def test_every_block_certified(certified_setup):
    issuer = certified_setup["issuer"]
    chain = certified_setup["chain"]
    assert len(issuer.certified) == chain.height
    for certified, block in zip(issuer.certified, chain.blocks[1:]):
        assert certified.block is block
        assert certified.certificate is not None
        assert certified.certificate.dig == block_digest(block.header)


def test_issuer_state_matches_miner_state(certified_setup):
    assert (
        certified_setup["issuer"].node.state.root
        == certified_setup["chain"].state.root
    )


def test_index_certificates_bind_block_and_root(certified_setup):
    issuer = certified_setup["issuer"]
    for certified in issuer.certified:
        for name, cert in certified.index_certificates.items():
            assert cert.dig == index_digest(
                certified.block.header, certified.index_roots[name]
            )
        for name, cert in certified.augmented_certificates.items():
            assert cert.dig == index_digest(
                certified.block.header, certified.index_roots[name]
            )


def test_augmented_and_hierarchical_agree_on_roots(certified_setup):
    """Both schemes certify the same index root for the same block."""
    for certified in certified_setup["issuer"].certified:
        for name in certified.index_certificates:
            assert (
                certified.index_certificates[name].dig
                == certified.augmented_certificates[name].dig
            )


def test_index_roots_track_maintained_indexes(certified_setup):
    issuer = certified_setup["issuer"]
    for name, index in issuer.indexes.items():
        assert issuer.index_root(name) == index.root


def test_unknown_scheme_rejected(user_keypair):
    from repro.chain.builder import ChainBuilder
    from repro.chain.genesis import make_genesis
    from repro.chain.transaction import sign_transaction
    from repro.core.issuer import CertificateIssuer
    from repro.errors import CertificateError
    from tests.conftest import fresh_vm

    builder = ChainBuilder(difficulty_bits=4)
    tx = sign_transaction(user_keypair.private, 0, "kvstore", "put", ("x", "y"))
    block, _ = builder.add_block([tx])
    genesis, state = make_genesis()
    issuer = CertificateIssuer(genesis, state, fresh_vm(), builder.pow)
    with pytest.raises(CertificateError):
        issuer.process_block(block, schemes=("quantum",))


def test_issuer_rejects_invalid_block(certified_setup):
    issuer = certified_setup["issuer"]
    stale = certified_setup["chain"].blocks[1]
    with pytest.raises(BlockValidationError):
        issuer.gen_cert(stale)


def test_certificates_chain_recursively(certified_setup):
    """cert_i signs H(hdr_i); the enclave accepted cert_{i-1} en route,
    so every digest matches its block in order."""
    issuer = certified_setup["issuer"]
    for certified, block in zip(issuer.certified, certified_setup["chain"].blocks[1:]):
        assert certified.certificate.dig == block.header.header_hash()
