"""The unified LightClient surface: protocol conformance, the
deprecated per-type verify wrappers, and the constant storage budget."""

import pytest

from repro.chain import ChainBuilder
from repro.chain.genesis import make_genesis
from repro.chain.transaction import sign_transaction
from repro.core.client_api import LightClient
from repro.core.superlight import (
    RemoteSuperlightClient,
    SuperlightClient,
    compute_expected_measurement,
)
from repro.crypto import generate_keypair
from repro.net.bus import MessageBus
from repro.query.api import (
    AggregateQuery,
    HistoryQuery,
    KeywordQuery,
    QueryAnswer,
    ValueRangeQuery,
)
from repro.query.indexes import (
    AccountHistoryIndexSpec,
    BalanceAggregateIndexSpec,
    KeywordIndexSpec,
    ValueRangeIndexSpec,
)
from repro.query.provider import QueryServiceProvider
from repro.sgx.attestation import AttestationService
from tests.conftest import fresh_vm

#: The paper's constant client state: ~2.97 KB.
PAPER_STORAGE_BUDGET_BYTES = int(2.97 * 1024)


@pytest.fixture()
def local_client(certified_setup):
    setup = certified_setup
    measurement = compute_expected_measurement(
        setup["genesis"].header.header_hash(),
        setup["ias"].public_key,
        fresh_vm(),
        setup["chain"].pow.difficulty_bits,
        setup["specs"],
    )
    return SuperlightClient(measurement, setup["ias"].public_key)


@pytest.fixture(scope="module")
def four_family_world():
    """A provider over all four index families, plus a client that
    trusts its roots (injected directly: these tests exercise answer
    verification, not certificate adoption)."""
    user = generate_keypair(b"client-api-user")
    builder = ChainBuilder(difficulty_bits=4, network="client-api")
    nonce = [0]

    def tx(contract, method, *args):
        signed = sign_transaction(
            user.private, nonce[0], contract, method, tuple(args)
        )
        nonce[0] += 1
        return signed

    builder.add_block([tx("smallbank", "create", "a1", "900", "100")])
    for round_ in range(3):
        builder.add_block([
            tx("smallbank", "deposit_checking", "a1", "50"),
            tx("kvstore", "put", "k1", f"v{round_}"),
        ])
    specs = [
        AccountHistoryIndexSpec(name="history"),
        KeywordIndexSpec(name="keyword"),
        BalanceAggregateIndexSpec(name="aggregate"),
        ValueRangeIndexSpec(name="range"),
    ]
    genesis, state = make_genesis(network="client-api")
    provider = QueryServiceProvider(
        genesis, state, fresh_vm(), builder.pow, specs
    )
    for block in builder.blocks[1:]:
        provider.ingest_block(block)

    ias = AttestationService(seed=b"client-api-ias")
    client = SuperlightClient(b"\x11" * 32, ias.public_key)
    for spec in specs:
        client._index_roots[spec.name] = (
            builder.height, provider.index_root(spec.name)
        )
    return provider, client, builder.height


# -- protocol conformance ----------------------------------------------------


def test_superlight_client_conforms(local_client):
    assert isinstance(local_client, LightClient)


def test_remote_client_conforms(certified_setup):
    bus = MessageBus()
    remote = RemoteSuperlightClient(
        bus, "client",
        certified_setup["issuer"].measurement,
        certified_setup["ias"].public_key,
        issuers=["ci"], providers=["sp"],
    )
    assert isinstance(remote, LightClient)


def test_arbitrary_object_does_not_conform():
    class NotAClient:
        def storage_bytes(self) -> int:
            return 0

    assert not isinstance(NotAClient(), LightClient)


def test_both_flavors_usable_through_the_protocol(certified_setup, local_client):
    def storage_of(client: LightClient) -> int:
        return client.storage_bytes()

    bus = MessageBus()
    remote = RemoteSuperlightClient(
        bus, "client",
        certified_setup["issuer"].measurement,
        certified_setup["ias"].public_key,
        issuers=["ci"], providers=["sp"],
    )
    assert storage_of(local_client) == 0
    assert storage_of(remote) == 0


# -- the unified verification surface ---------------------------------------


def test_verify_answer_covers_all_four_families(four_family_world):
    provider, client, height = four_family_world
    requests = (
        HistoryQuery(index="history", account="k1", t_from=1, t_to=height),
        KeywordQuery(index="keyword", keywords=("k1",)),
        AggregateQuery(index="aggregate", account="a1", t_from=1, t_to=height),
        ValueRangeQuery(index="range", lo=0, hi=10_000),
    )
    for request in requests:
        answer = provider.execute(request)
        assert client.verify_answer(request, answer)


def test_verify_answer_rejects_tampered_answers(four_family_world):
    from dataclasses import replace

    provider, client, height = four_family_world
    request = HistoryQuery(index="history", account="k1", t_from=1, t_to=height)
    answer = provider.execute(request)
    tampered = replace(answer.payload, versions=answer.payload.versions[:-1])
    assert not client.verify_answer(
        request, QueryAnswer(request=request, payload=tampered)
    )


# -- the storage budget (Fig. 7a) -------------------------------------------


def test_storage_counts_index_certificates(local_client, certified_setup):
    tip = certified_setup["issuer"].certified[-1]
    local_client.validate_chain(tip.block.header, tip.certificate)
    base = local_client.storage_bytes()
    assert base == (
        tip.block.header.size_bytes() + tip.certificate.size_bytes()
    )
    cert = tip.index_certificates["history"]
    local_client.validate_index_certificate(
        "history", tip.block.header, tip.index_roots["history"], cert
    )
    grown = local_client.storage_bytes()
    # One index certificate plus its (height, root) bookkeeping.
    assert grown == base + cert.size_bytes() + 32 + 8


def test_full_client_state_within_paper_budget(local_client, certified_setup):
    """Header + certificate + every index certificate: ~2.97 KB."""
    tip = certified_setup["issuer"].certified[-1]
    local_client.validate_chain(tip.block.header, tip.certificate)
    for name in ("history", "keyword"):
        local_client.validate_index_certificate(
            name, tip.block.header,
            tip.index_roots[name], tip.index_certificates[name],
        )
    total = local_client.storage_bytes()
    assert 0 < total <= PAPER_STORAGE_BUDGET_BYTES
    # The wallet file is the durable form of exactly this state.
    restored = SuperlightClient.from_json(local_client.to_json())
    assert restored.storage_bytes() == total
