"""The unified LightClient surface: protocol conformance, the
connect() factory, the streaming surface, and the storage budget."""

import pytest

from repro.chain import ChainBuilder
from repro.chain.genesis import make_genesis
from repro.chain.transaction import sign_transaction
from repro.core.client_api import ClientConfig, LightClient, connect
from repro.core.superlight import (
    RemoteSuperlightClient,
    SuperlightClient,
    compute_expected_measurement,
)
from repro.errors import ReproError
from repro.crypto import generate_keypair
from repro.net.bus import MessageBus
from repro.query.api import (
    AggregateQuery,
    HistoryQuery,
    KeywordQuery,
    QueryAnswer,
    ValueRangeQuery,
)
from repro.query.indexes import (
    AccountHistoryIndexSpec,
    BalanceAggregateIndexSpec,
    KeywordIndexSpec,
    ValueRangeIndexSpec,
)
from repro.query.provider import QueryServiceProvider
from repro.sgx.attestation import AttestationService
from tests.conftest import fresh_vm

#: The paper's constant client state: ~2.97 KB.
PAPER_STORAGE_BUDGET_BYTES = int(2.97 * 1024)


@pytest.fixture()
def local_client(certified_setup):
    setup = certified_setup
    measurement = compute_expected_measurement(
        setup["genesis"].header.header_hash(),
        setup["ias"].public_key,
        fresh_vm(),
        setup["chain"].pow.difficulty_bits,
        setup["specs"],
    )
    return SuperlightClient(measurement, setup["ias"].public_key)


@pytest.fixture(scope="module")
def four_family_world():
    """A provider over all four index families, plus a client that
    trusts its roots (injected directly: these tests exercise answer
    verification, not certificate adoption)."""
    user = generate_keypair(b"client-api-user")
    builder = ChainBuilder(difficulty_bits=4, network="client-api")
    nonce = [0]

    def tx(contract, method, *args):
        signed = sign_transaction(
            user.private, nonce[0], contract, method, tuple(args)
        )
        nonce[0] += 1
        return signed

    builder.add_block([tx("smallbank", "create", "a1", "900", "100")])
    for round_ in range(3):
        builder.add_block([
            tx("smallbank", "deposit_checking", "a1", "50"),
            tx("kvstore", "put", "k1", f"v{round_}"),
        ])
    specs = [
        AccountHistoryIndexSpec(name="history"),
        KeywordIndexSpec(name="keyword"),
        BalanceAggregateIndexSpec(name="aggregate"),
        ValueRangeIndexSpec(name="range"),
    ]
    genesis, state = make_genesis(network="client-api")
    provider = QueryServiceProvider(
        genesis, state, fresh_vm(), builder.pow, specs
    )
    for block in builder.blocks[1:]:
        provider.ingest_block(block)

    ias = AttestationService(seed=b"client-api-ias")
    client = SuperlightClient(b"\x11" * 32, ias.public_key)
    for spec in specs:
        client._index_roots[spec.name] = (
            builder.height, provider.index_root(spec.name)
        )
    return provider, client, builder.height


# -- protocol conformance ----------------------------------------------------


def test_superlight_client_conforms(local_client):
    assert isinstance(local_client, LightClient)


def test_remote_client_conforms(certified_setup):
    bus = MessageBus()
    remote = connect(ClientConfig(
        measurement=certified_setup["issuer"].measurement,
        ias_public_key=certified_setup["ias"].public_key,
        bus=bus, name="client",
        issuers=("ci",), providers=("sp",),
    ))
    assert isinstance(remote, LightClient)


def test_arbitrary_object_does_not_conform():
    class NotAClient:
        def storage_bytes(self) -> int:
            return 0

    assert not isinstance(NotAClient(), LightClient)


def test_both_flavors_usable_through_the_protocol(certified_setup, local_client):
    def storage_of(client: LightClient) -> int:
        return client.storage_bytes()

    bus = MessageBus()
    remote = connect(ClientConfig(
        measurement=certified_setup["issuer"].measurement,
        ias_public_key=certified_setup["ias"].public_key,
        bus=bus, name="client",
        issuers=("ci",), providers=("sp",),
    ))
    assert storage_of(local_client) == 0
    assert storage_of(remote) == 0


def test_object_missing_streaming_surface_does_not_conform():
    """The protocol now covers staying at the tip: a poll-only client
    shape (everything but subscribe/unsubscribe/on_tip) is not a
    LightClient."""

    class PollOnly:
        latest_header = None

        def validate_chain(self, header, cert):
            return False

        def verify_answer(self, request, answer):
            return False

        def certified_index_root(self, name):
            raise KeyError(name)

        def storage_bytes(self):
            return 0

    assert not isinstance(PollOnly(), LightClient)


# -- the connect() factory ---------------------------------------------------


def _anchors(certified_setup):
    return dict(
        measurement=certified_setup["issuer"].measurement,
        ias_public_key=certified_setup["ias"].public_key,
    )


def test_connect_local_mode(certified_setup):
    client = connect(ClientConfig(**_anchors(certified_setup)))
    assert isinstance(client, SuperlightClient)


def test_connect_remote_providers(certified_setup):
    client = connect(ClientConfig(
        **_anchors(certified_setup),
        bus=MessageBus(), issuers=("ci",), providers=("sp1", "sp2"),
    ))
    assert isinstance(client, RemoteSuperlightClient)
    assert client.providers == ["sp1", "sp2"] and client.gateway is None


def test_connect_remote_gateway(certified_setup):
    from repro.net.gateway import QueryGateway

    bus = MessageBus()
    gateway = QueryGateway(bus, "gw", ["sp1", "sp2"])
    client = connect(ClientConfig(
        **_anchors(certified_setup), bus=bus, issuers=("ci",), gateway=gateway,
    ))
    assert isinstance(client, RemoteSuperlightClient)
    assert client.gateway is gateway and client.providers == []
    # The gateway's switch-verification hook is wired to the client.
    assert gateway.verify_switch is not None


def test_connect_remote_tip_only(certified_setup):
    """No providers, no gateway: a certificate-sync-only client."""
    client = connect(ClientConfig(
        **_anchors(certified_setup), bus=MessageBus(), issuers=("ci",),
    ))
    assert isinstance(client, RemoteSuperlightClient)
    assert client.providers == [] and client.gateway is None


def test_connect_emits_no_deprecation_warning(certified_setup):
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        connect(ClientConfig(
            **_anchors(certified_setup),
            bus=MessageBus(), issuers=("ci",), providers=("sp",),
        ))


@pytest.mark.parametrize("overrides", [
    # A remote client with no issuer endpoints cannot sync certificates.
    dict(bus=MessageBus()),
    # Providers and a gateway are competing query transports.
    dict(bus=MessageBus(), issuers=("ci",), providers=("sp",), gateway=object()),
    # Remote-mode settings without a bus are a mis-wiring, not local mode.
    dict(providers=("sp",)),
    dict(hub="hub"),
    # subscribe=True needs a push source: a hub (remote) or issuer (local).
    dict(bus=MessageBus(), issuers=("ci",), subscribe=True),
    dict(subscribe=True),
])
def test_config_validate_rejects_miswirings(certified_setup, overrides):
    config = ClientConfig(**_anchors(certified_setup), **overrides)
    with pytest.raises(ReproError):
        config.validate()


@pytest.mark.parametrize("overrides,match", [
    # A remote client (bus/gateway transport) combined with a local
    # in-process issuer= is two shapes at once.
    (dict(bus=MessageBus(), issuers=("ci",), issuer=object()), "local-mode"),
    (dict(bus=MessageBus(), issuers=("ci",), gateway=object(),
          issuer=object()), "local-mode"),
    # Subscribing remotely without a hub endpoint: the error names it.
    (dict(bus=MessageBus(), issuers=("ci",), subscribe=True), "hub"),
    # Remote-mode settings with no service transport (no bus) point at
    # the missing bus, not at local mode.
    (dict(providers=("sp",)), "bus"),
    (dict(gateway=object()), "bus"),
    (dict(hub="hub"), "bus"),
])
def test_config_validate_names_the_miswiring(certified_setup, overrides,
                                             match):
    """Each rejection message names the conflicting/missing setting."""
    config = ClientConfig(**_anchors(certified_setup), **overrides)
    with pytest.raises(ReproError, match=match):
        config.validate()


def test_connect_rejects_issuer_with_remote_transport(certified_setup):
    """connect() refuses to build a client that is simultaneously local
    (issuer=) and remote (bus/gateway) — nothing half-constructed."""
    with pytest.raises(ReproError, match="issuer"):
        connect(ClientConfig(
            **_anchors(certified_setup),
            bus=MessageBus(), issuers=("ci",),
            issuer=certified_setup["issuer"],
        ))


def test_legacy_constructor_warns(certified_setup):
    """Direct construction keeps working one release, loudly."""
    bus = MessageBus()
    with pytest.warns(DeprecationWarning, match="connect"):
        legacy = RemoteSuperlightClient(
            bus, "legacy",
            certified_setup["issuer"].measurement,
            certified_setup["ias"].public_key,
            issuers=["ci"], providers=["sp"],
        )
    assert isinstance(legacy, LightClient)


def test_legacy_constructor_warning_names_connect(certified_setup):
    """The deprecation text must tell the caller exactly where to go:
    the connect(ClientConfig(...)) factory."""
    with pytest.warns(DeprecationWarning) as records:
        RemoteSuperlightClient(
            MessageBus(), "legacy",
            certified_setup["issuer"].measurement,
            certified_setup["ias"].public_key,
            issuers=["ci"], providers=["sp"],
        )
    messages = [
        str(r.message) for r in records
        if r.category is DeprecationWarning
    ]
    assert any(
        "connect(" in m and "ClientConfig" in m for m in messages
    ), f"deprecation text does not name connect(): {messages}"


def test_legacy_constructor_keeps_old_transport_rule(certified_setup):
    """The deprecated path still enforces 'exactly one of providers or
    gateway' — only connect() supports tip-only clients."""
    from repro.errors import CertificateError

    with pytest.warns(DeprecationWarning), pytest.raises(CertificateError):
        RemoteSuperlightClient(
            MessageBus(), "legacy",
            certified_setup["issuer"].measurement,
            certified_setup["ias"].public_key,
            issuers=["ci"],
        )


# -- local push subscription (direct issuer callback) ------------------------


def _subscription_world():
    """A tiny fresh chain + issuer a local client can subscribe to."""
    from repro.core.issuer import CertificateIssuer

    user = generate_keypair(b"client-api-sub")
    builder = ChainBuilder(difficulty_bits=4, network="client-api-sub")
    for nonce in range(4):
        builder.add_block([
            sign_transaction(
                user.private, nonce, "kvstore", "put", (f"k{nonce}", f"v{nonce}")
            )
        ])
    genesis, state = make_genesis(network="client-api-sub")
    ias = AttestationService(seed=b"client-api-sub-ias")
    issuer = CertificateIssuer(
        genesis, state, fresh_vm(), builder.pow,
        index_specs=[], ias=ias, key_seed=b"client-api-sub-enclave",
    )
    return builder, issuer, ias


def test_local_client_subscribes_directly_to_issuer():
    builder, issuer, ias = _subscription_world()
    client = connect(ClientConfig(
        measurement=issuer.measurement, ias_public_key=ias.public_key,
        issuer=issuer, subscribe=True,
    ))
    seen = []
    client.on_tip(lambda header, cert: seen.append(header.height))
    for block in builder.blocks[1:3]:
        issuer.process_block(block)
    assert client.latest_header is not None
    assert client.latest_header.height == 2
    assert seen == [1, 2]
    # Unsubscribing stops the feed: later certifications leave the tip.
    client.unsubscribe()
    for block in builder.blocks[3:]:
        issuer.process_block(block)
    assert client.latest_header.height == 2 and seen == [1, 2]
    assert issuer.certified[-1].block.header.height == builder.height


def test_local_subscribe_requires_an_issuer_source():
    from repro.errors import CertificateError

    builder, issuer, ias = _subscription_world()
    client = SuperlightClient(issuer.measurement, ias.public_key)
    with pytest.raises(CertificateError):
        client.subscribe()
    with pytest.raises(CertificateError):
        client.subscribe(source=object())


# -- the unified verification surface ---------------------------------------


def test_verify_answer_covers_all_four_families(four_family_world):
    provider, client, height = four_family_world
    requests = (
        HistoryQuery(index="history", account="k1", t_from=1, t_to=height),
        KeywordQuery(index="keyword", keywords=("k1",)),
        AggregateQuery(index="aggregate", account="a1", t_from=1, t_to=height),
        ValueRangeQuery(index="range", lo=0, hi=10_000),
    )
    for request in requests:
        answer = provider.execute(request)
        assert client.verify_answer(request, answer)


def test_verify_answer_rejects_tampered_answers(four_family_world):
    from dataclasses import replace

    provider, client, height = four_family_world
    request = HistoryQuery(index="history", account="k1", t_from=1, t_to=height)
    answer = provider.execute(request)
    tampered = replace(answer.payload, versions=answer.payload.versions[:-1])
    assert not client.verify_answer(
        request, QueryAnswer(request=request, payload=tampered)
    )


# -- the storage budget (Fig. 7a) -------------------------------------------


def test_storage_counts_index_certificates(local_client, certified_setup):
    tip = certified_setup["issuer"].certified[-1]
    local_client.validate_chain(tip.block.header, tip.certificate)
    base = local_client.storage_bytes()
    assert base == (
        tip.block.header.size_bytes() + tip.certificate.size_bytes()
    )
    cert = tip.index_certificates["history"]
    local_client.validate_index_certificate(
        "history", tip.block.header, tip.index_roots["history"], cert
    )
    grown = local_client.storage_bytes()
    # One index certificate plus its (height, root) bookkeeping.
    assert grown == base + cert.size_bytes() + 32 + 8


def test_full_client_state_within_paper_budget(local_client, certified_setup):
    """Header + certificate + every index certificate: ~2.97 KB."""
    tip = certified_setup["issuer"].certified[-1]
    local_client.validate_chain(tip.block.header, tip.certificate)
    for name in ("history", "keyword"):
        local_client.validate_index_certificate(
            name, tip.block.header,
            tip.index_roots[name], tip.index_certificates[name],
        )
    total = local_client.storage_bytes()
    assert 0 < total <= PAPER_STORAGE_BUDGET_BYTES
    # The wallet file is the durable form of exactly this state.
    restored = SuperlightClient.from_json(local_client.to_json())
    assert restored.storage_bytes() == total
