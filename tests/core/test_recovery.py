"""Checkpointed recovery: fast path, O(gap) enclave work, sealed negatives."""

import pytest

from repro.chain.genesis import make_genesis
from repro.core.recovery import DurableIssuer, IssuerCheckpoint, recover_issuer
from repro.errors import ArchiveCorruptionError, CertificateError, EnclaveError
from repro.query.indexes import AccountHistoryIndexSpec
from repro.sgx.attestation import AttestationService
from repro.sgx.platform import SGXPlatform
from repro.storage import ChainArchive, restore_issuer
from tests.conftest import fresh_vm

SPEC = AccountHistoryIndexSpec(name="history")


def make_durable(kv_chain, tmp_path, *, blocks, checkpoint_interval=0,
                 platform=None, name="ci.wal"):
    ias = AttestationService(seed=b"recovery-ias")
    platform = platform or SGXPlatform(seed=b"recovery-platform")
    genesis, state = make_genesis()
    durable = DurableIssuer.create(
        ChainArchive(tmp_path / name), genesis, state, fresh_vm(),
        kv_chain.pow, index_specs=[SPEC], platform=platform, ias=ias,
        key_seed=b"recovery-enclave", checkpoint_interval=checkpoint_interval,
    )
    for block in kv_chain.blocks[1 : 1 + blocks]:
        durable.process_block(block)
    return durable, platform, ias


def recover(kv_chain, durable, default_platform, ias, **kwargs):
    genesis, state = make_genesis()
    return recover_issuer(
        durable.archive, genesis, state, fresh_vm(), kv_chain.pow,
        index_specs=kwargs.pop("index_specs", [SPEC]),
        platform=kwargs.pop("platform", default_platform), ias=ias, **kwargs,
    )


def test_checkpoint_payload_roundtrip(kv_chain, tmp_path):
    durable, _, _ = make_durable(kv_chain, tmp_path, blocks=3)
    snapshot = IssuerCheckpoint.capture(durable.issuer)
    again = IssuerCheckpoint.from_bytes(snapshot.to_bytes())
    assert again == snapshot
    assert again.height == 3
    assert again.pk_enc == durable.pk_enc.to_bytes().hex()


def test_checkpoint_refused_with_staged_blocks(kv_chain, tmp_path):
    durable, _, _ = make_durable(kv_chain, tmp_path, blocks=2)
    durable.stage_block(kv_chain.blocks[3])
    with pytest.raises(CertificateError):
        durable.checkpoint()
    durable.certify_staged()
    durable.checkpoint()  # fine at a batch boundary
    assert durable.archive.read_checkpoint()[0] == 3


def test_interval_checkpointing(kv_chain, tmp_path):
    durable, _, _ = make_durable(
        kv_chain, tmp_path, blocks=7, checkpoint_interval=3
    )
    height, _sealed = durable.archive.read_checkpoint()
    assert height == 6  # taken at 3 and re-taken at 6, not yet at 7


def test_checkpoint_fast_path_matches_full_replay(kv_chain, tmp_path):
    durable, platform, ias = make_durable(kv_chain, tmp_path, blocks=8)
    durable.checkpoint()
    for block in kv_chain.blocks[9:11]:
        durable.process_block(block)

    recovered = recover(kv_chain, durable, platform, ias)
    report = recovered.last_recovery
    assert report.checkpoint_used
    assert report.checkpoint_height == 8
    assert report.replayed_blocks == 2  # only the gap went enclave-side
    assert recovered.node.height == 10
    assert recovered.node.state.root == durable.node.state.root
    assert recovered.index_root("history") == durable.index_root("history")
    assert (
        recovered.latest_certificate.encode()
        == durable.latest_certificate.encode()
    )
    assert (
        recovered.index_certificate("history").encode()
        == durable.index_certificate("history").encode()
    )
    assert [c.block.header.height for c in recovered.certified] == list(
        range(1, 11)
    )


def test_recovery_without_checkpoint_replays_everything(kv_chain, tmp_path):
    durable, platform, ias = make_durable(kv_chain, tmp_path, blocks=6)
    recovered = recover(kv_chain, durable, platform, ias)
    assert not recovered.last_recovery.checkpoint_used
    assert recovered.last_recovery.replayed_blocks == 6


def test_checkpointed_recovery_enclave_work_is_o_gap(kv_chain, tmp_path):
    """Same gap, different chain lengths -> same per-restart ecall count
    (the acceptance criterion: enclave work independent of history)."""
    ecalls = {}
    for blocks in (4, 8):
        durable, platform, ias = make_durable(
            kv_chain, tmp_path, blocks=blocks, name=f"len{blocks}.wal"
        )
        durable.checkpoint()
        for block in kv_chain.blocks[1 + blocks : 3 + blocks]:
            durable.process_block(block)  # gap of 2 past the checkpoint
        recovered = recover(kv_chain, durable, platform, ias)
        assert recovered.last_recovery.replayed_blocks == 2
        ecalls[blocks] = recovered.enclave.ledger.ecalls
    assert ecalls[4] == ecalls[8]

    # Without a checkpoint the same restores pay O(chain) enclave work.
    full = {}
    for blocks in (4, 8):
        durable, platform, ias = make_durable(
            kv_chain, tmp_path, blocks=blocks, name=f"nockpt{blocks}.wal"
        )
        recovered = recover(kv_chain, durable, platform, ias)
        full[blocks] = recovered.enclave.ledger.ecalls
    assert full[8] > full[4]


def test_staged_batch_resumes_after_recovery(kv_chain, tmp_path):
    durable, platform, ias = make_durable(kv_chain, tmp_path, blocks=3)
    durable.stage_block(kv_chain.blocks[4])
    durable.stage_block(kv_chain.blocks[5])
    # 'Crash': abandon the in-memory issuer; records are on disk.
    recovered = recover(kv_chain, durable, platform, ias)
    assert recovered.last_recovery.staged_resumed == 2
    assert recovered.staged_count == 2
    assert recovered.node.height == 5  # staged blocks are committed
    certified = recovered.certify_staged()
    assert [c.block.header.height for c in certified] == [4, 5]
    # And the batch landed in the archive.
    heights = [
        e.block.header.height for e in recovered.archive.load().entries
    ]
    assert heights == [1, 2, 3, 4, 5]


def test_noncontiguous_staged_leftovers_discarded(kv_chain, tmp_path):
    durable, platform, ias = make_durable(kv_chain, tmp_path, blocks=3)
    # Journal a staged record with a gap (as if height 4's record was
    # lost to a torn tail but height 5's survived — only possible with
    # out-of-order tampering, but recovery must stay sane).
    durable.issuer.stage_block(kv_chain.blocks[4])
    durable.issuer.stage_block(kv_chain.blocks[5])
    staged5 = durable.issuer._staged[1]
    durable.archive.append_staged(staged5.block, staged5.write_set)
    recovered = recover(kv_chain, durable, platform, ias)
    assert recovered.last_recovery.staged_resumed == 0
    assert recovered.last_recovery.staged_discarded == 1
    assert recovered.node.height == 3


# -- sealed negative paths ----------------------------------------------------


def test_restore_on_wrong_platform_fails_cleanly(kv_chain, tmp_path):
    durable, platform, ias = make_durable(kv_chain, tmp_path, blocks=3)
    durable.checkpoint()
    with pytest.raises(EnclaveError):
        recover(kv_chain, durable, platform, ias,
                platform=SGXPlatform(seed=b"impostor"))


def test_restore_with_modified_measurement_fails_cleanly(kv_chain, tmp_path):
    """A different enclave program (different index specs -> different
    measurement) cannot unseal the archived key, even on the right
    platform — and the failure flows through restore_issuer cleanly."""
    durable, platform, ias = make_durable(kv_chain, tmp_path, blocks=3)
    genesis, state = make_genesis()
    with pytest.raises(EnclaveError):
        restore_issuer(
            durable.archive, genesis, state, fresh_vm(), kv_chain.pow,
            index_specs=None,  # measurement no longer covers SPEC
            platform=platform, ias=ias,
        )


def test_tampered_checkpoint_rejected_not_replayed(kv_chain, tmp_path):
    durable, platform, ias = make_durable(kv_chain, tmp_path, blocks=4)
    durable.checkpoint()
    height, sealed = durable.archive.read_checkpoint()
    flipped = bytearray(sealed)
    flipped[len(flipped) // 2] ^= 0x01
    durable.archive.write_checkpoint(height, bytes(flipped))
    with pytest.raises(EnclaveError):  # MAC failure inside the enclave
        recover(kv_chain, durable, platform, ias)


def test_checkpoint_ahead_of_wal_rejected(kv_chain, tmp_path):
    durable, platform, ias = make_durable(kv_chain, tmp_path, blocks=3)
    durable.checkpoint()
    _height, sealed = durable.archive.read_checkpoint()
    durable.archive.write_checkpoint(99, sealed)
    with pytest.raises(ArchiveCorruptionError):
        recover(kv_chain, durable, platform, ias)


def test_sealed_checkpoint_cannot_pose_as_signing_key(kv_chain, tmp_path):
    """Seal-domain separation: feeding a sealed checkpoint blob where
    the sealed signing key belongs fails, despite a valid MAC."""
    durable, platform, ias = make_durable(kv_chain, tmp_path, blocks=3)
    durable.checkpoint()
    _height, sealed_checkpoint = durable.archive.read_checkpoint()
    evil = ChainArchive(tmp_path / "confused.wal")
    evil.initialize(sealed_checkpoint)
    genesis, state = make_genesis()
    with pytest.raises(EnclaveError, match="domain"):
        recover_issuer(
            evil, genesis, state, fresh_vm(), kv_chain.pow,
            index_specs=[SPEC], platform=platform, ias=ias,
        )


def test_sealed_key_cannot_pose_as_checkpoint(kv_chain, tmp_path):
    durable, platform, ias = make_durable(kv_chain, tmp_path, blocks=3)
    sealed_key = durable.archive.load().sealed_key
    durable.archive.write_checkpoint(3, sealed_key)
    with pytest.raises(EnclaveError, match="domain"):
        recover(kv_chain, durable, platform, ias)


def test_recovered_issuer_keeps_certifying(kv_chain, tmp_path):
    durable, platform, ias = make_durable(
        kv_chain, tmp_path, blocks=5, checkpoint_interval=2
    )
    recovered = recover(kv_chain, durable, platform, ias,
                        checkpoint_interval=2)
    certified = recovered.process_block(kv_chain.blocks[6])
    assert certified.certificate is not None
    assert recovered.pk_enc == durable.pk_enc
    # The continuation is durable too: a second recovery sees it.
    again = recover(kv_chain, recovered, platform, ias)
    assert again.node.height == 6
