"""Differential: batched issuance == sequential issuance, byte for byte.

The batched path's contract is that it changes the *cost shape* of
certification, never its output: for any chain, any batch split, and
any proof-cache capacity, the certificates must be byte-identical to
the sequential path's, the authenticated-index roots and certificates
must match, and a superlight client must see exactly the same chain.
Both issuers share the platform / IAS / signing-key seeds, so even the
attestation reports inside the certificates are identical and full
``Certificate.encode()`` equality is meaningful.

The big test certifies 200 seeded random blocks (4 chains x 50) through
the batched pipeline with the proof cache on and diffs every encoded
certificate against the sequential run's.
"""

from __future__ import annotations

import random

import pytest

from repro.chain.builder import ChainBuilder
from repro.chain.genesis import make_genesis
from repro.chain.transaction import sign_transaction
from repro.core import (
    CertificationPipeline,
    SuperlightClient,
    compute_expected_measurement,
)
from repro.core.issuer import CertificateIssuer
from repro.crypto import generate_keypair
from repro.query.api import HistoryQuery, QueryAnswer
from repro.query.indexes import AccountHistoryIndexSpec
from repro.sgx.attestation import AttestationService
from repro.sgx.platform import SGXPlatform
from tests.conftest import fresh_vm

_USER = generate_keypair(b"batch-diff-user")


def random_chain(seed: int, blocks: int, *, difficulty_bits: int = 4,
                 key_pool: int = 6) -> ChainBuilder:
    """A seeded random KV chain: 1-3 puts per block over a small hot
    key pool (overlap is what exercises the proof cache)."""
    rng = random.Random(seed)
    builder = ChainBuilder(
        difficulty_bits=difficulty_bits, network=f"batch-diff-{seed}"
    )
    nonce = 0
    for _ in range(blocks):
        txs = []
        for _ in range(rng.randint(1, 3)):
            key = f"acct{rng.randrange(key_pool)}"
            txs.append(sign_transaction(
                _USER.private, nonce, "kvstore", "put",
                (key, f"v{rng.randrange(1000)}"),
            ))
            nonce += 1
        builder.add_block(txs)
    return builder


def make_issuer(builder: ChainBuilder, seed: int, *, indexes: bool = True,
                cache: int = 0) -> CertificateIssuer:
    """An issuer with every identity seed pinned, so two issuers over
    the same chain produce byte-identical certificates."""
    genesis, state = make_genesis(network=f"batch-diff-{seed}")
    return CertificateIssuer(
        genesis, state, fresh_vm(), builder.pow,
        index_specs=[AccountHistoryIndexSpec(name="history")] if indexes else [],
        ias=AttestationService(seed=b"batch-diff-ias"),
        platform=SGXPlatform(seed=b"batch-diff-platform"),
        key_seed=b"batch-diff-enclave",
        proof_cache_entries=cache,
    )


def assert_identical(seq: CertificateIssuer, bat: CertificateIssuer) -> None:
    """Every client-visible artifact matches, byte for byte."""
    assert len(seq.certified) == len(bat.certified)
    for a, b in zip(seq.certified, bat.certified):
        assert a.certificate.encode() == b.certificate.encode(), (
            f"certificate differs at height {a.block.header.height}"
        )
        assert set(a.index_certificates) == set(b.index_certificates)
        for name, cert in a.index_certificates.items():
            assert cert.encode() == b.index_certificates[name].encode()
        assert a.index_roots == b.index_roots
    assert seq.node.state.root == bat.node.state.root
    assert seq.latest_certificate == bat.latest_certificate
    assert seq._index_roots == bat._index_roots


def run_batched(builder: ChainBuilder, seed: int, batch_size: int,
                *, cache: int = 64) -> CertificateIssuer:
    issuer = make_issuer(builder, seed, cache=cache)
    pipeline = CertificationPipeline(issuer, batch_size=batch_size)
    for block in builder.blocks[1:]:
        pipeline.submit(block)
    pipeline.close()
    return issuer


@pytest.fixture(scope="module")
def chain12():
    return random_chain(seed=1201, blocks=12)


@pytest.fixture(scope="module")
def sequential12(chain12):
    issuer = make_issuer(chain12, 1201)
    for block in chain12.blocks[1:]:
        issuer.process_block(block)
    return issuer


@pytest.mark.parametrize("batch_size", [1, 5, 6])
def test_batched_is_byte_identical(chain12, sequential12, batch_size):
    """Batch sizes 1, K, and K+1 (12 = 2x6 lands a boundary exactly on
    the tip; 5 leaves a 2-block tail batch)."""
    batched = run_batched(chain12, 1201, batch_size)
    assert_identical(sequential12, batched)


def test_batched_without_cache_is_byte_identical(chain12, sequential12):
    batched = run_batched(chain12, 1201, 4, cache=0)
    assert_identical(sequential12, batched)


def test_batch_spanning_index_certification_boundary(chain12, sequential12):
    """Interleave the paths: sequential certification advances the block
    and index certificate chains *between* batches, so each batch must
    re-anchor on certificates the batch ecall did not issue (and the
    enclave must drop its stale carried slice)."""
    issuer = make_issuer(chain12, 1201, cache=64)
    blocks = chain12.blocks[1:]
    for block in blocks[:3]:
        issuer.process_block(block)
    issuer.issue_batch(blocks[3:8])
    for block in blocks[8:10]:
        issuer.process_block(block)
    issuer.issue_batch(blocks[10:])
    assert_identical(sequential12, issuer)


def test_ledger_totals_differ_only_by_modeled_savings(chain12):
    """Bookkeeping (always recorded): the sequential path pays one ecall
    per block certificate plus one per index update; the batched path
    pays one per batch.  Nothing else about the work differs."""
    seq = make_issuer(chain12, 1201)
    for block in chain12.blocks[1:]:
        seq.process_block(block)
    bat = run_batched(chain12, 1201, 4)
    blocks = len(chain12.blocks) - 1
    indexes = 1
    assert seq.enclave.ledger.ecalls == blocks * (1 + indexes)
    assert bat.enclave.ledger.ecalls == blocks / 4
    assert seq.enclave.ledger.ocalls == bat.enclave.ledger.ocalls == 0
    # The batched enclave skips the per-block anchor re-verification, so
    # it must do strictly less in-enclave work, not more.
    assert bat.enclave.ledger.in_enclave_s < seq.enclave.ledger.in_enclave_s


def test_client_visible_state_matches(chain12, sequential12):
    """A superlight client accepts both runs' tips interchangeably and
    verifies the same query answer against either."""
    batched = run_batched(chain12, 1201, 5)
    measurement = compute_expected_measurement(
        chain12.blocks[0].header.header_hash(),
        sequential12.ias.public_key,
        fresh_vm(),
        chain12.pow.difficulty_bits,
        {"history": AccountHistoryIndexSpec(name="history")},
    )
    for issuer in (sequential12, batched):
        client = SuperlightClient(measurement, issuer.ias.public_key)
        tip = issuer.certified[-1]
        assert client.validate_chain(tip.block.header, tip.certificate)
        client.validate_index_certificate(
            "history", tip.block.header,
            tip.index_roots["history"], tip.index_certificates["history"],
        )
        request = HistoryQuery(
            index="history", account="acct1", t_from=1,
            t_to=tip.block.header.height,
        )
        answer = issuer.indexes["history"].query_history(
            "acct1", 1, tip.block.header.height
        )
        assert client.verify_answer(
            request, QueryAnswer(request=request, payload=answer)
        )


def test_200_seeded_random_blocks_byte_identical():
    """The acceptance sweep: 4 seeded chains x 50 blocks, batched K=8
    with the proof cache on, every certificate diffed byte-for-byte."""
    total = 0
    for seed in (7, 11, 23, 42):
        builder = random_chain(seed, blocks=50, difficulty_bits=1)
        seq = make_issuer(builder, seed)
        for block in builder.blocks[1:]:
            seq.process_block(block)
        bat = run_batched(builder, seed, 8, cache=64)
        assert_identical(seq, bat)
        assert bat.proof_cache.hits > 0, "hot keys never hit the cache"
        total += len(bat.certified)
    assert total == 200
