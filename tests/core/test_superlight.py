"""The superlight client: Alg. 3, chain selection, constant costs."""

import pytest

from repro.core.superlight import SuperlightClient, compute_expected_measurement
from repro.errors import CertificateError
from tests.conftest import fresh_vm


@pytest.fixture()
def client(certified_setup):
    setup = certified_setup
    measurement = compute_expected_measurement(
        setup["genesis"].header.header_hash(),
        setup["ias"].public_key,
        fresh_vm(),
        setup["chain"].pow.difficulty_bits,
        setup["specs"],
    )
    assert measurement == setup["issuer"].measurement
    return SuperlightClient(measurement, setup["ias"].public_key)


def test_validate_latest_tip(client, certified_setup):
    tip = certified_setup["issuer"].certified[-1]
    assert client.validate_chain(tip.block.header, tip.certificate)
    assert client.latest_header == tip.block.header


def test_chain_selection_prefers_height(client, certified_setup):
    certified = certified_setup["issuer"].certified
    assert client.validate_chain(certified[-1].block.header, certified[-1].certificate)
    # An older (but genuinely certified) block loses chain selection.
    assert not client.validate_chain(
        certified[0].block.header, certified[0].certificate
    )
    assert client.latest_header == certified[-1].block.header


def test_storage_is_constant(client, certified_setup):
    sizes = []
    for certified in certified_setup["issuer"].certified:
        client.validate_chain(certified.block.header, certified.certificate)
        sizes.append(client.storage_bytes())
    assert max(sizes) - min(sizes) <= 8  # only numeric field widths vary


def test_report_checked_once_per_enclave(client, certified_setup):
    certified = certified_setup["issuer"].certified
    client.validate_chain(certified[0].block.header, certified[0].certificate)
    assert len(client._verified_reports) == 1
    client.validate_chain(certified[1].block.header, certified[1].certificate)
    assert len(client._verified_reports) == 1


def test_report_cache_binds_full_report_content(client, certified_setup):
    """Regression (found by tests/proptest): the verified-report cache
    must key on every attested field, not the signature alone.  A
    certificate whose report replays a previously verified signature
    but carries a tampered measurement must not ride the cache past the
    measurement check."""
    from dataclasses import replace

    tip = certified_setup["issuer"].certified[-1]
    assert client.validate_chain(tip.block.header, tip.certificate)

    index_cert = tip.index_certificates["history"]
    bad_measurement = bytes([index_cert.report.measurement[0] ^ 0x01]) + (
        index_cert.report.measurement[1:]
    )
    forged = replace(
        index_cert, report=replace(index_cert.report, measurement=bad_measurement)
    )
    with pytest.raises(CertificateError):
        client.validate_index_certificate(
            "history", tip.block.header, tip.index_roots["history"], forged
        )


def test_index_certificate_adoption(client, certified_setup):
    certified = certified_setup["issuer"].certified
    old, new = certified[-2], certified[-1]
    assert client.validate_index_certificate(
        "history", new.block.header, new.index_roots["history"],
        new.index_certificates["history"],
    )
    # An older index certificate does not displace a newer root.
    assert not client.validate_index_certificate(
        "history", old.block.header, old.index_roots["history"],
        old.index_certificates["history"],
    )
    assert client.certified_index_root("history") == new.index_roots["history"]


def test_augmented_certificate_also_validates(client, certified_setup):
    tip = certified_setup["issuer"].certified[-1]
    assert client.validate_index_certificate(
        "keyword", tip.block.header, tip.index_roots["keyword"],
        tip.augmented_certificates["keyword"],
    )


def test_unknown_index_root_raises(client):
    with pytest.raises(CertificateError):
        client.certified_index_root("unheard-of")


def test_query_verification_through_client(client, certified_setup):
    issuer = certified_setup["issuer"]
    tip = issuer.certified[-1]
    client.validate_index_certificate(
        "history", tip.block.header, tip.index_roots["history"],
        tip.index_certificates["history"],
    )
    from repro.query.api import HistoryQuery, KeywordQuery, QueryAnswer

    request = HistoryQuery(index="history", account="k1", t_from=1, t_to=10)
    answer = issuer.indexes["history"].query_history("k1", 1, 10)
    assert client.verify_answer(
        request, QueryAnswer(request=request, payload=answer)
    )

    client.validate_index_certificate(
        "keyword", tip.block.header, tip.index_roots["keyword"],
        tip.index_certificates["keyword"],
    )
    keyword_request = KeywordQuery(index="keyword", keywords=("v1",))
    keyword_answer = issuer.indexes["keyword"].query_conjunctive(["v1"])
    assert client.verify_answer(
        keyword_request,
        QueryAnswer(request=keyword_request, payload=keyword_answer),
    )


def test_wrong_measurement_rejected(certified_setup):
    setup = certified_setup
    client = SuperlightClient(b"\x00" * 32, setup["ias"].public_key)
    tip = setup["issuer"].certified[-1]
    with pytest.raises(CertificateError):
        client.validate_chain(tip.block.header, tip.certificate)


def test_wrong_ias_key_rejected(certified_setup):
    from repro.sgx.attestation import AttestationService

    setup = certified_setup
    rogue_ias = AttestationService(seed=b"rogue")
    client = SuperlightClient(setup["issuer"].measurement, rogue_ias.public_key)
    tip = setup["issuer"].certified[-1]
    with pytest.raises(CertificateError):
        client.validate_chain(tip.block.header, tip.certificate)


def test_wallet_roundtrip(client, certified_setup):
    tip = certified_setup["issuer"].certified[-1]
    client.validate_chain(tip.block.header, tip.certificate)
    client.validate_index_certificate(
        "history", tip.block.header, tip.index_roots["history"],
        tip.index_certificates["history"],
    )
    restored = SuperlightClient.from_json(client.to_json())
    assert restored.latest_header == client.latest_header
    assert restored.certified_index_root("history") == client.certified_index_root(
        "history"
    )
    assert restored.storage_bytes() == client.storage_bytes()


def test_wallet_tamper_rejected(client, certified_setup):
    import json

    tip = certified_setup["issuer"].certified[-1]
    client.validate_chain(tip.block.header, tip.certificate)
    wallet = json.loads(client.to_json())
    header = json.loads(wallet["header"])
    header["height"] += 100
    wallet["header"] = json.dumps(header, sort_keys=True)
    with pytest.raises(CertificateError):
        SuperlightClient.from_json(json.dumps(wallet))


def test_empty_wallet_roundtrip(certified_setup):
    client = SuperlightClient(
        certified_setup["issuer"].measurement, certified_setup["ias"].public_key
    )
    restored = SuperlightClient.from_json(client.to_json())
    assert restored.latest_header is None
    assert restored.storage_bytes() == 0


def test_verified_report_cache_is_bounded(client, certified_setup):
    # Pretend earlier sessions verified other enclaves, and shrink the
    # cap so the next genuine verification must evict the oldest.
    client.VERIFIED_REPORTS_LIMIT = 2
    client._verified_reports[(b"old-a", b"r", b"k", b"s")] = None
    client._verified_reports[(b"old-b", b"r", b"k", b"s")] = None
    certified = certified_setup["issuer"].certified[0]
    assert client.validate_chain(
        certified.block.header, certified.certificate
    )
    assert len(client._verified_reports) == 2
    assert (b"old-a", b"r", b"k", b"s") not in client._verified_reports
    # The freshly verified identity survived; revalidation stays cached.
    client.validate_chain(certified.block.header, certified.certificate)
    assert len(client._verified_reports) == 2
