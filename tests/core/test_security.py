"""Adversarial tests for Definitions 1 and 2 (§6 of the paper).

Definition 1 (block certificate security): no polynomial adversary can
produce a valid certificate for an invalid block or one violating chain
selection.  Definition 2 (verifiable query security): no adversary can
produce a valid proof + certificate for a tampered/incomplete result.

Each test plays a concrete adversary — a malicious CI forging
certificates, a malicious SP forging answers — and asserts the honest
verifier rejects.
"""

import pytest
from dataclasses import replace

from repro.core.certificate import CERT_SIG_DOMAIN, Certificate
from repro.core.digest import block_digest
from repro.core.superlight import SuperlightClient
from repro.crypto import generate_keypair, sign
from repro.query.api import HistoryQuery, KeywordQuery, QueryAnswer
from repro.errors import CertificateError
from repro.sgx.attestation import AttestationService, sign_quote
from repro.sgx.platform import SGXPlatform


@pytest.fixture()
def client(certified_setup):
    client = SuperlightClient(
        certified_setup["issuer"].measurement, certified_setup["ias"].public_key
    )
    tip = certified_setup["issuer"].certified[-1]
    client.validate_chain(tip.block.header, tip.certificate)
    for name in ("history", "keyword"):
        client.validate_index_certificate(
            name, tip.block.header, tip.index_roots[name],
            tip.index_certificates[name],
        )
    return client


# -- Definition 1: forged block certificates ---------------------------------


def test_adversary_without_enclave_key_cannot_certify(certified_setup, client):
    """Malicious CI signs a fabricated header with its own key and
    attaches the honest enclave's report."""
    tip = certified_setup["issuer"].certified[-1]
    rogue = generate_keypair(b"malicious-ci")
    fake_header = replace(tip.block.header, height=tip.block.header.height + 1000)
    dig = block_digest(fake_header)
    forged = Certificate(
        pk_enc=rogue.public,
        report=tip.certificate.report,
        dig=dig,
        sig=sign(rogue.private, dig, CERT_SIG_DOMAIN),
    )
    with pytest.raises(CertificateError):
        client.validate_chain(fake_header, forged)


def test_adversary_cannot_reuse_signature_for_other_header(certified_setup, client):
    """A real signature transplanted onto a different header fails."""
    tip = certified_setup["issuer"].certified[-1]
    fake_header = replace(tip.block.header, height=tip.block.header.height + 1)
    transplanted = Certificate(
        pk_enc=tip.certificate.pk_enc,
        report=tip.certificate.report,
        dig=block_digest(fake_header),
        sig=tip.certificate.sig,
    )
    with pytest.raises(CertificateError):
        client.validate_chain(fake_header, transplanted)


def test_adversary_cannot_claim_old_cert_for_new_header(certified_setup, client):
    """Presenting an old certificate verbatim with a new header: the
    digest check (Alg. 3 line 7) catches it."""
    tip = certified_setup["issuer"].certified[-1]
    fake_header = replace(tip.block.header, timestamp=tip.block.header.timestamp + 1)
    with pytest.raises(CertificateError):
        client.validate_chain(fake_header, tip.certificate)


def test_adversary_running_modified_enclave_fails_measurement(certified_setup, client):
    """An adversary controls a *real* platform and runs a lax program
    that signs anything; its measurement differs, so its reports are
    rejected by honest clients."""
    from repro.sgx.enclave import EnclaveHost, EnclaveProgram

    class LaxProgram(EnclaveProgram):
        ECALLS = ("sign_anything",)

        def on_init(self) -> bytes:
            self._keypair = generate_keypair(b"lax")
            return self._keypair.public.to_bytes()

        def sign_anything(self, dig):
            return sign(self._keypair.private, dig, CERT_SIG_DOMAIN)

    ias = certified_setup["ias"]
    platform = SGXPlatform(seed=b"adversary-platform")
    ias.register_platform(platform)
    host = EnclaveHost(LaxProgram(), platform)
    report = host.attest(ias)  # IAS happily attests — wrong measurement

    tip = certified_setup["issuer"].certified[-1]
    fake_header = replace(tip.block.header, height=tip.block.header.height + 5)
    dig = block_digest(fake_header)
    forged = Certificate(
        pk_enc=host.program._keypair.public,
        report=report,
        dig=dig,
        sig=host.ecall("sign_anything", dig),
    )
    with pytest.raises(CertificateError):
        client.validate_chain(fake_header, forged)


def test_adversary_cannot_fake_ias(certified_setup):
    """A self-made 'IAS' signing arbitrary reports convinces nobody who
    pins the real IAS key."""
    fake_ias = AttestationService(seed=b"fake-ias")
    platform = SGXPlatform(seed=b"any")
    fake_ias.register_platform(platform)
    issuer = certified_setup["issuer"]
    quote = sign_quote(platform, issuer.measurement, b"\x02" + bytes(32))
    # the fake IAS will vouch for anything it sees
    report = fake_ias.attest(quote)
    assert not report.verify(certified_setup["ias"].public_key)


def test_chain_selection_enforced(certified_setup, client):
    """Even with a perfectly valid certificate, a lower block loses the
    longest-chain rule (Definition 1, condition ii)."""
    older = certified_setup["issuer"].certified[-3]
    assert client.validate_chain(older.block.header, older.certificate) is False
    assert client.latest_header.height == certified_setup["chain"].height


# -- Definition 2: forged query answers ---------------------------------------


def verify_history(client, name, answer):
    """Check a bare HistoryAnswer through the unified typed API."""
    request = HistoryQuery(
        index=name, account=answer.account,
        t_from=answer.t_from, t_to=answer.t_to,
    )
    return client.verify_answer(
        request, QueryAnswer(request=request, payload=answer)
    )


def verify_keyword(client, name, answer):
    """Check a bare KeywordAnswer through the unified typed API."""
    request = KeywordQuery(index=name, keywords=tuple(answer.keywords))
    return client.verify_answer(
        request, QueryAnswer(request=request, payload=answer)
    )


def test_sp_cannot_drop_history_versions(certified_setup, client):
    answer = certified_setup["issuer"].indexes["history"].query_history("k1", 1, 10)
    assert verify_history(client, "history", answer)
    assert len(answer.versions) >= 2
    assert not verify_history(
        client, "history", replace(answer, versions=answer.versions[1:])
    )


def test_sp_cannot_alter_history_values(certified_setup, client):
    answer = certified_setup["issuer"].indexes["history"].query_history("k1", 1, 10)
    forged = ((answer.versions[0][0], b"evil"),) + answer.versions[1:]
    assert not verify_history(client, "history", replace(answer, versions=forged))


def test_sp_cannot_shrink_the_window(certified_setup, client):
    """Answering a narrower window than asked is caught because the
    proof's window bounds are checked against the query."""
    index = certified_setup["issuer"].indexes["history"]
    narrow = index.query_history("k1", 5, 6)
    wide_claimed = replace(narrow, t_from=1, t_to=10)
    assert not verify_history(client, "history", wide_claimed)


def test_sp_cannot_serve_stale_index_root(certified_setup, client):
    """Answers proven against an older index snapshot fail against the
    latest certified root."""
    from repro.query.indexes import AccountHistoryIndexSpec, TwoLevelHistoryIndex
    from repro.chain.genesis import make_genesis
    from repro.chain.node import FullNode
    from tests.conftest import fresh_vm

    # Rebuild the index but stop two blocks early (a stale snapshot).
    spec = AccountHistoryIndexSpec(name="history")
    stale = TwoLevelHistoryIndex(spec)
    genesis, state = make_genesis()
    node = FullNode(genesis, state, fresh_vm(), certified_setup["chain"].pow)
    for block in certified_setup["chain"].blocks[1:-2]:
        result = node.validate_block(block)
        stale.ingest_block(block, result.write_set)
        node.state.apply_writes(result.write_set)
        node.blocks.append(block)
    answer = stale.query_history("k1", 1, 10)
    assert not verify_history(client, "history", answer)


def test_sp_cannot_withhold_keyword_matches(certified_setup, client):
    answer = certified_setup["issuer"].indexes["keyword"].query_conjunctive(["v1"])
    assert verify_keyword(client, "keyword", answer)
    assert len(answer.results) >= 1
    assert not verify_keyword(
        client, "keyword", replace(answer, results=answer.results[:-1])
    )


def test_sp_cannot_inject_keyword_matches(certified_setup, client):
    answer = certified_setup["issuer"].indexes["keyword"].query_conjunctive(["v1"])
    padded = replace(answer, results=answer.results + ((999 << 20),))
    assert not verify_keyword(client, "keyword", padded)
