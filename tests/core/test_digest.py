"""Certificate digests: block vs index binding."""

from repro.chain.block import BlockHeader, ZERO_HASH
from repro.core.digest import block_digest, index_digest
from repro.crypto.hashing import sha256


def header(height=1):
    return BlockHeader(height, ZERO_HASH, 0, 0, bytes(32), bytes(32), 0)


def test_block_digest_is_header_hash():
    assert block_digest(header()) == header().header_hash()


def test_index_digest_binds_both_inputs():
    root_a, root_b = sha256(b"a"), sha256(b"b")
    assert index_digest(header(), root_a) != index_digest(header(), root_b)
    assert index_digest(header(1), root_a) != index_digest(header(2), root_a)


def test_block_and_index_digests_are_domain_separated():
    """An index certificate can never be replayed as a block certificate,
    even if an adversary controls the index root."""
    root = sha256(b"adversarial")
    assert index_digest(header(), root) != block_digest(header())
