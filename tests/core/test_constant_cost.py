"""The constant-cost claim, verified at the operation level.

Fig. 7's benches show wall-clock constancy; these tests pin the
stronger structural invariant: the number of cryptographic operations a
superlight client performs per tip validation does not depend on chain
length at all (and drops once the attestation report is cached).
"""

import pytest

import repro.crypto.ecdsa as ecdsa_module
from repro.core.superlight import SuperlightClient


class _OpCounter:
    def __init__(self, monkeypatch):
        self.verifies = 0
        original = ecdsa_module.verify_digest

        def counting(*args, **kwargs):
            self.verifies += 1
            return original(*args, **kwargs)

        monkeypatch.setattr(ecdsa_module, "verify_digest", counting)

    def reset(self):
        self.verifies = 0


@pytest.fixture()
def counter(monkeypatch):
    return _OpCounter(monkeypatch)


def test_first_validation_costs_two_verifies(certified_setup, counter):
    """Report signature + certificate signature: exactly two."""
    tip = certified_setup["issuer"].certified[-1]
    client = SuperlightClient(
        certified_setup["issuer"].measurement, certified_setup["ias"].public_key
    )
    counter.reset()
    client.validate_chain(tip.block.header, tip.certificate)
    assert counter.verifies == 2


def test_steady_state_costs_one_verify(certified_setup, counter):
    """With the report cached (§4.3), only the certificate signature."""
    tip = certified_setup["issuer"].certified[-1]
    client = SuperlightClient(
        certified_setup["issuer"].measurement, certified_setup["ias"].public_key
    )
    client.validate_chain(tip.block.header, tip.certificate)
    counter.reset()
    client.validate_chain(tip.block.header, tip.certificate)
    assert counter.verifies == 1


def test_cost_independent_of_chain_position(certified_setup, counter):
    """Validating the tip of a longer prefix costs the same ops."""
    client = SuperlightClient(
        certified_setup["issuer"].measurement, certified_setup["ias"].public_key
    )
    costs = []
    for certified in certified_setup["issuer"].certified:
        fresh = SuperlightClient(
            certified_setup["issuer"].measurement,
            certified_setup["ias"].public_key,
        )
        counter.reset()
        fresh.validate_chain(certified.block.header, certified.certificate)
        costs.append(counter.verifies)
    assert len(set(costs)) == 1  # identical at every height


def test_light_client_cost_grows_with_chain(certified_setup):
    """Contrast: the baseline's validation work is linear (hash count
    proxied by header count, no crypto monkeypatching needed)."""
    from repro.chain.lightclient import LightClient

    chain = certified_setup["chain"]
    client = LightClient(chain.genesis.header, chain.pow)
    client.bootstrap(chain.headers()[1:])
    assert len(client.headers) == chain.height + 1
