"""Update proofs: building, opening, failure modes."""

import pytest

from repro.chain.state import StateStore, state_key
from repro.core.updateproof import UpdateProof
from repro.errors import ProofError


@pytest.fixture()
def store():
    store = StateStore()
    for index in range(10):
        store.put_raw(state_key("c", f"f{index}"), b"v%d" % index)
    return store


def test_build_and_open(store):
    keys = [state_key("c", "f1"), state_key("c", "f2"), state_key("c", "missing")]
    proof = UpdateProof.build(store, keys)
    partial = proof.open(store.root)
    assert partial.get(keys[0]) == b"v1"
    assert partial.get(keys[2]) is None


def test_read_values(store):
    keys = [state_key("c", "f1"), state_key("c", "missing")]
    proof = UpdateProof.build(store, keys)
    assert proof.read_values() == {keys[0]: b"v1", keys[1]: None}


def test_open_against_wrong_root_fails(store):
    proof = UpdateProof.build(store, [state_key("c", "f1")])
    store.put_raw(state_key("c", "f1"), b"changed")
    with pytest.raises(ProofError):
        proof.open(store.root)


def test_empty_proof_cannot_open(store):
    with pytest.raises(ProofError):
        UpdateProof(entries=()).open(store.root)


def test_size_bytes_counts_entries(store):
    small = UpdateProof.build(store, [state_key("c", "f1")])
    large = UpdateProof.build(store, [state_key("c", f"f{i}") for i in range(8)])
    assert 0 < small.size_bytes() < large.size_bytes()
