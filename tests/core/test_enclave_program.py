"""The in-enclave program: Alg. 2's checks, one by one."""

import pytest

from repro.chain.block import Block, BlockHeader
from repro.core.certificate import Certificate
from repro.core.digest import block_digest
from repro.core.updateproof import UpdateProof
from repro.errors import CertificateError, EnclaveError, ProofError


@pytest.fixture()
def program(certified_setup):
    return certified_setup["issuer"].enclave.program


@pytest.fixture()
def last_two(certified_setup):
    issuer = certified_setup["issuer"]
    return issuer.certified[-2], issuer.certified[-1]


def rebuild_proof(certified_setup, block):
    """Recompute the update proof for an already-committed block by
    replaying the chain up to its parent on a throwaway node."""
    from repro.chain.genesis import make_genesis
    from repro.chain.node import FullNode
    from tests.conftest import fresh_vm

    genesis, state = make_genesis()
    node = FullNode(
        genesis, state, fresh_vm(), certified_setup["chain"].pow
    )
    for earlier in certified_setup["chain"].blocks[1:]:
        if earlier.header.height >= block.header.height:
            break
        node.append_block(earlier)
    result = node.validate_block(block)
    return UpdateProof.build(node.state, result.touched_keys())


def test_sig_gen_accepts_valid_successor(certified_setup, program, last_two):
    prev_certified, tip_certified = last_two
    proof = rebuild_proof(certified_setup, tip_certified.block)
    signature = program.sig_gen(
        prev_certified.block, prev_certified.certificate, tip_certified.block, proof
    )
    assert signature == tip_certified.certificate.sig  # RFC-6979 determinism


def test_sig_gen_rejects_missing_prev_certificate(certified_setup, program, last_two):
    prev_certified, tip_certified = last_two
    proof = rebuild_proof(certified_setup, tip_certified.block)
    with pytest.raises(CertificateError):
        program.sig_gen(prev_certified.block, None, tip_certified.block, proof)


def test_sig_gen_rejects_forged_prev_certificate(certified_setup, program, last_two):
    prev_certified, tip_certified = last_two
    proof = rebuild_proof(certified_setup, tip_certified.block)
    good = prev_certified.certificate
    forged = Certificate(good.pk_enc, good.report, b"\x00" * 32, good.sig)
    with pytest.raises(CertificateError):
        program.sig_gen(prev_certified.block, forged, tip_certified.block, proof)


def test_sig_gen_rejects_wrong_genesis(certified_setup, program):
    chain = certified_setup["chain"]
    first = chain.blocks[1]
    fake_genesis = Block(
        header=BlockHeader(0, b"\x01" * 32, 0, 0, bytes(32), bytes(32), 0),
        transactions=(),
    )
    proof = rebuild_proof(certified_setup, first)
    with pytest.raises(CertificateError):
        program.sig_gen(fake_genesis, None, first, proof)


def test_blk_verify_rejects_broken_linkage(certified_setup, program, last_two):
    prev_certified, tip_certified = last_two
    proof = rebuild_proof(certified_setup, tip_certified.block)
    header = tip_certified.block.header
    broken = Block(
        header=BlockHeader(
            header.height, b"\x00" * 32, header.nonce, header.difficulty_bits,
            header.state_root, header.tx_root, header.timestamp,
        ),
        transactions=tip_certified.block.transactions,
    )
    with pytest.raises(CertificateError):
        program.blk_verify_t(prev_certified.block, broken, proof)


def test_blk_verify_rejects_wrong_height(certified_setup, program):
    issuer = certified_setup["issuer"]
    two_back, tip = issuer.certified[-3], issuer.certified[-1]
    proof = rebuild_proof(certified_setup, tip.block)
    with pytest.raises(CertificateError):
        program.blk_verify_t(two_back.block, tip.block, proof)


def test_blk_verify_rejects_bad_pow(certified_setup, program, last_two):
    prev_certified, tip_certified = last_two
    proof = rebuild_proof(certified_setup, tip_certified.block)
    header = tip_certified.block.header
    candidates = (
        BlockHeader(header.height, header.prev_hash, nonce, header.difficulty_bits,
                    header.state_root, header.tx_root, header.timestamp)
        for nonce in range(100_000)
    )
    pow_engine = certified_setup["chain"].pow
    bad_header = next(c for c in candidates if not pow_engine.check(c))
    bad = Block(header=bad_header, transactions=tip_certified.block.transactions)
    with pytest.raises(CertificateError):
        program.blk_verify_t(prev_certified.block, bad, proof)


def test_blk_verify_rejects_tampered_tx_list(certified_setup, program, last_two):
    prev_certified, tip_certified = last_two
    proof = rebuild_proof(certified_setup, tip_certified.block)
    tampered = Block(
        header=tip_certified.block.header,
        transactions=tip_certified.block.transactions[:-1],
    )
    with pytest.raises(CertificateError):
        program.blk_verify_t(prev_certified.block, tampered, proof)


def test_blk_verify_rejects_forged_read_values(certified_setup, program, last_two):
    """A CI that lies about pre-state values cannot build a proof."""
    prev_certified, tip_certified = last_two
    proof = rebuild_proof(certified_setup, tip_certified.block)
    if not proof.entries:
        pytest.skip("block touched no state")
    key, value, smt_proof = proof.entries[0]
    forged_value = b"forged" if value != b"forged" else b"forged2"
    forged = UpdateProof(entries=((key, forged_value, smt_proof),) + proof.entries[1:])
    with pytest.raises(ProofError):
        program.blk_verify_t(prev_certified.block, tip_certified.block, forged)


def test_blk_verify_rejects_incomplete_proof(certified_setup, program, last_two):
    """Dropping one touched key from the update proof is caught when the
    replay reads or writes outside the proven slice."""
    prev_certified, tip_certified = last_two
    proof = rebuild_proof(certified_setup, tip_certified.block)
    if len(proof.entries) < 2:
        pytest.skip("block touched too little state")
    incomplete = UpdateProof(entries=proof.entries[1:])
    with pytest.raises(ProofError):
        program.blk_verify_t(prev_certified.block, tip_certified.block, incomplete)


def test_cert_verify_accepts_good_certificate(program, last_two):
    _, tip_certified = last_two
    program.cert_verify_t(
        block_digest(tip_certified.block.header), tip_certified.certificate
    )


def test_cert_verify_rejects_digest_mismatch(program, last_two):
    prev_certified, tip_certified = last_two
    with pytest.raises(CertificateError):
        program.cert_verify_t(
            block_digest(prev_certified.block.header), tip_certified.certificate
        )


def test_cert_verify_rejects_foreign_enclave_key(certified_setup, program, last_two):
    """A certificate signed by a different (even honest) enclave key
    whose report data does not match is rejected."""
    from repro.crypto import generate_keypair, sign
    from repro.core.certificate import CERT_SIG_DOMAIN

    _, tip_certified = last_two
    rogue = generate_keypair(b"rogue-key")
    dig = block_digest(tip_certified.block.header)
    forged = Certificate(
        pk_enc=rogue.public,
        report=tip_certified.certificate.report,
        dig=dig,
        sig=sign(rogue.private, dig, CERT_SIG_DOMAIN),
    )
    with pytest.raises(CertificateError):
        program.cert_verify_t(dig, forged)


def test_index_sig_gen_requires_cached_write_set(certified_setup, program):
    """Hierarchical index certification for a block this enclave never
    replayed must fail loudly."""
    issuer = certified_setup["issuer"]
    tip = issuer.certified[-1]
    prev = issuer.certified[-2]
    program._recent.clear()
    try:
        with pytest.raises(EnclaveError):
            program.index_sig_gen(
                prev.block.header,
                prev.index_roots["history"],
                prev.index_certificates["history"],
                tip.block.header,
                tip.certificate,
                tip.index_roots["history"],
                None,
                "history",
            )
    finally:
        pass  # cache stays empty; later tests do not rely on it


def test_unknown_index_spec_rejected(program, last_two):
    _, tip_certified = last_two
    with pytest.raises(EnclaveError):
        program.index_sig_gen(
            tip_certified.block.header, b"", None,
            tip_certified.block.header, tip_certified.certificate,
            b"", None, "no-such-index",
        )
