"""Certified state sync: snapshot bootstrap anchored in certificates."""

import pytest
from dataclasses import replace

from repro.core.statesync import (
    StateSnapshot,
    bootstrap_full_node,
    export_snapshot,
)
from repro.core.superlight import SuperlightClient
from repro.errors import StateError
from tests.conftest import fresh_vm


@pytest.fixture()
def client(certified_setup):
    return SuperlightClient(
        certified_setup["issuer"].measurement, certified_setup["ias"].public_key
    )


@pytest.fixture()
def tip(certified_setup):
    return certified_setup["issuer"].certified[-1]


@pytest.fixture()
def snapshot(certified_setup):
    return export_snapshot(certified_setup["issuer"].node)


def test_honest_snapshot_bootstraps(certified_setup, client, tip, snapshot):
    node = bootstrap_full_node(
        client, tip.block, tip.certificate, snapshot,
        fresh_vm(), certified_setup["chain"].pow,
    )
    assert node.height == certified_setup["chain"].height
    assert node.state.root == certified_setup["chain"].state.root


def test_bootstrapped_node_extends_the_chain(certified_setup, client, tip, snapshot, user_keypair):
    """The synced node validates and commits the *next* block like any
    full node — without ever having replayed history."""
    from repro.chain.transaction import sign_transaction

    node = bootstrap_full_node(
        client, tip.block, tip.certificate, snapshot,
        fresh_vm(), certified_setup["chain"].pow,
    )
    # Mine one more block on a scratch copy of the miner's chain.
    chain = certified_setup["chain"]
    tx = sign_transaction(user_keypair.private, 777, "kvstore", "put", ("sync", "ok"))
    import copy

    scratch_state = copy.deepcopy(chain.state)
    block, _ = chain.miner.make_block(chain.tip.header, scratch_state, [tx])
    node.append_block(block)
    assert node.height == tip.block.header.height + 1
    assert node.state.root == scratch_state.root


def test_tampered_snapshot_rejected(certified_setup, client, tip, snapshot):
    cells = list(snapshot.cells)
    key, value = cells[0]
    cells[0] = (key, value + b"!")
    tampered = StateSnapshot(height=snapshot.height, cells=tuple(cells), depth=snapshot.depth)
    with pytest.raises(StateError):
        bootstrap_full_node(
            client, tip.block, tip.certificate, tampered,
            fresh_vm(), certified_setup["chain"].pow,
        )


def test_truncated_snapshot_rejected(certified_setup, client, tip, snapshot):
    truncated = StateSnapshot(
        height=snapshot.height, cells=snapshot.cells[:-1], depth=snapshot.depth
    )
    with pytest.raises(StateError):
        bootstrap_full_node(
            client, tip.block, tip.certificate, truncated,
            fresh_vm(), certified_setup["chain"].pow,
        )


def test_stale_snapshot_rejected(certified_setup, client, tip):
    """A snapshot from an earlier height has a different root."""
    from repro.chain.genesis import make_genesis
    from repro.chain.node import FullNode

    genesis, state = make_genesis()
    older = FullNode(genesis, state, fresh_vm(), certified_setup["chain"].pow)
    for block in certified_setup["chain"].blocks[1:-2]:
        older.append_block(block)
    stale = export_snapshot(older)
    with pytest.raises(StateError):
        bootstrap_full_node(
            client, tip.block, tip.certificate, stale,
            fresh_vm(), certified_setup["chain"].pow,
        )


def test_forged_certificate_rejected_before_snapshot_check(
    certified_setup, client, tip, snapshot
):
    from repro.errors import CertificateError

    forged = replace(tip.certificate, dig=bytes(32))
    with pytest.raises(CertificateError):
        bootstrap_full_node(
            client, tip.block, forged, snapshot,
            fresh_vm(), certified_setup["chain"].pow,
        )
