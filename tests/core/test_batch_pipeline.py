"""Batched issuance mechanics: staging, pipeline, proof cache, RPC.

The differential suite (test_batch_differential.py) proves the batched
path's *output* equals the sequential path's; this file covers the
machinery around it — the staging queue's guard rails, the
CertificationPipeline's flush/auto-flush behaviour and stats, the
ProofCache LRU, PartialSMT.forget, failure handling (a tampered staged
proof must abort and leave the issuer able to continue), and the
``certify_range`` RPC surface.
"""

from __future__ import annotations

import pytest

from repro.chain.builder import ChainBuilder
from repro.chain.genesis import make_genesis
from repro.chain.transaction import sign_transaction
from repro.core import CertificationPipeline
from repro.core.issuer import CertificateIssuer, IssuerService
from repro.crypto import generate_keypair
from repro.crypto.hashing import sha256
from repro.errors import CertificateError, ProofError
from repro.merkle.partial import PartialSMT
from repro.merkle.proofcache import ProofCache
from repro.merkle.smt import SparseMerkleTree
from repro.net import MessageBus, RpcClient
from repro.query.indexes import AccountHistoryIndexSpec
from repro.sgx.attestation import AttestationService
from tests.conftest import fresh_vm

_USER = generate_keypair(b"batch-pipe-user")


def build_chain(blocks: int = 10) -> ChainBuilder:
    builder = ChainBuilder(difficulty_bits=4, network="batch-pipe")
    nonce = 0
    for i in range(blocks):
        builder.add_block([sign_transaction(
            _USER.private, nonce, "kvstore", "put",
            (f"k{i % 3}", f"v{i}"),
        )])
        nonce += 1
    return builder


@pytest.fixture()
def world():
    builder = build_chain()
    genesis, state = make_genesis(network="batch-pipe")
    issuer = CertificateIssuer(
        genesis, state, fresh_vm(), builder.pow,
        index_specs=[AccountHistoryIndexSpec(name="history")],
        ias=AttestationService(seed=b"batch-pipe-ias"),
        key_seed=b"batch-pipe-enclave",
        proof_cache_entries=32,
    )
    return builder, issuer


# -- pipeline ----------------------------------------------------------------


def test_pipeline_auto_flush_at_batch_size(world):
    builder, issuer = world
    pipeline = CertificationPipeline(issuer, batch_size=4)
    out = []
    for block in builder.blocks[1:]:
        out.extend(pipeline.submit(block))
    # 10 blocks at K=4: two auto-flushes, 2 staged blocks left over.
    assert len(out) == 8
    assert issuer.staged_count == 2
    out.extend(pipeline.close())
    assert len(out) == 10
    assert pipeline.stats.blocks == 10
    assert pipeline.stats.batches == 3
    assert pipeline.stats.stage_s > 0.0
    assert pipeline.stats.certify_s > 0.0
    assert pipeline.stats.pipelined_latency_s() <= (
        pipeline.stats.stage_s + pipeline.stats.certify_s
    )


def test_pipeline_manual_flush_and_empty_flush(world):
    builder, issuer = world
    pipeline = CertificationPipeline(issuer, batch_size=100, auto_flush=False)
    assert pipeline.flush() == []
    pipeline.submit(builder.blocks[1])
    pipeline.submit(builder.blocks[2])
    certified = pipeline.flush()
    assert [c.block.header.height for c in certified] == [1, 2]
    assert pipeline.flush() == []


def test_pipeline_rejects_bad_batch_size(world):
    _, issuer = world
    with pytest.raises(ValueError):
        CertificationPipeline(issuer, batch_size=0)


def test_certify_staged_empty_is_noop(world):
    _, issuer = world
    assert issuer.certify_staged() == []


def test_process_block_with_staged_pending_raises(world):
    builder, issuer = world
    issuer.stage_block(builder.blocks[1])
    with pytest.raises(CertificateError, match="staged"):
        issuer.process_block(builder.blocks[2])
    # The staged block is still certifiable.
    certified = issuer.certify_staged()
    assert [c.block.header.height for c in certified] == [1]


def test_tampered_staged_proof_aborts_and_recovers(world):
    """A stale/forged update proof in a staged item must abort the whole
    batch (ProofError from the enclave), clear the cache mirror, and
    leave the issuer able to certify later blocks from scratch."""
    builder, issuer = world
    issuer.issue_batch(builder.blocks[1:3])
    issuer.stage_block(builder.blocks[3])
    staged = issuer._staged[0]
    # Replace the proof with one against the *new* root: entries verify
    # against the wrong root inside the enclave and must be rejected.
    from dataclasses import replace

    from repro.core.updateproof import UpdateProof

    stale = UpdateProof.build(
        issuer.node.state, sorted(staged.write_set)
    )
    issuer._staged[0] = replace(staged, item=replace(staged.item, update_proof=stale))
    with pytest.raises(ProofError):
        issuer.certify_staged()
    assert issuer.proof_cache.keys() == set()
    assert issuer._enclave_keys == set()
    assert issuer.staged_count == 0


def test_issue_batch_after_failure_continues(world):
    """After an aborted batch the chain state has advanced past the
    failed blocks; a fresh issuer run over the same blocks still works
    (full proofs are re-shipped since the mirror was cleared)."""
    builder, issuer = world
    issuer.issue_batch(builder.blocks[1:4])
    certified = issuer.issue_batch(builder.blocks[4:7])
    assert [c.block.header.height for c in certified] == [4, 5, 6]


# -- proof cache -------------------------------------------------------------


def test_proof_cache_lru_eviction_order():
    cache = ProofCache(2)
    assert not cache.lookup(b"a")
    cache.admit(b"a")
    cache.admit(b"b")
    assert cache.lookup(b"a")  # refreshes a's recency
    cache.admit(b"c")  # evicts b (least recently used)
    assert cache.keys() == {b"a", b"c"}
    assert cache.evictions == 1
    assert not cache.lookup(b"b")
    stats = cache.stats()
    assert stats["hits"] == 1
    assert stats["misses"] == 2
    assert 0.0 < stats["hit_rate"] < 1.0


def test_proof_cache_capacity_zero_disables():
    cache = ProofCache(0)
    cache.admit(b"a")
    assert not cache.lookup(b"a")
    assert len(cache) == 0
    assert cache.hit_rate() == 0.0


def test_proof_cache_rejects_negative_capacity():
    with pytest.raises(ValueError):
        ProofCache(-1)


# -- PartialSMT.forget -------------------------------------------------------


def _k(label: str) -> bytes:
    return sha256(label.encode())


def test_partial_smt_forget_prunes_but_stays_usable():
    tree = SparseMerkleTree(depth=16)
    items = {_k(f"key{i}"): f"val{i}".encode() for i in range(6)}
    for key, value in items.items():
        tree.update(key, value)
    root = tree.root
    entries = [(key, value, tree.prove(key)) for key, value in items.items()]
    partial = PartialSMT.from_proofs(root, entries)
    nodes_before = len(partial._nodes)

    partial.forget([_k("key0"), _k("key1"), b"\x00" * 32])
    assert len(partial) == 4
    assert not partial.covers(_k("key0"))
    assert len(partial._nodes) < nodes_before
    # Forgotten keys are unreadable and unwritable...
    with pytest.raises(ProofError):
        partial.get(_k("key0"))
    with pytest.raises(ProofError):
        partial.update(_k("key1"), b"x")
    # ...while remaining keys still read and write correctly, and the
    # recomputed root tracks the full tree.
    assert partial.get(_k("key2")) == b"val2"
    partial.update(_k("key3"), b"new3")
    tree.update(_k("key3"), b"new3")
    assert partial.root == tree.root


def test_partial_smt_forget_everything_clears_nodes():
    tree = SparseMerkleTree(depth=16)
    tree.update(_k("k"), b"v")
    partial = PartialSMT.from_proofs(tree.root, [(_k("k"), b"v", tree.prove(_k("k")))])
    partial.forget([_k("k")])
    assert len(partial) == 0
    assert partial._nodes == {}


def test_partial_smt_forget_noop_keeps_nodes():
    tree = SparseMerkleTree(depth=16)
    tree.update(_k("k"), b"v")
    partial = PartialSMT.from_proofs(tree.root, [(_k("k"), b"v", tree.prove(_k("k")))])
    nodes = dict(partial._nodes)
    partial.forget([_k("other")])
    assert partial._nodes == nodes


# -- certify_range RPC -------------------------------------------------------


@pytest.fixture()
def rpc_world(world):
    builder, issuer = world
    bus = MessageBus(default_latency_ms=5.0)
    IssuerService(bus, "ci", issuer)
    client = RpcClient(bus, "relay")
    return builder, issuer, bus, client


def test_certify_range_over_rpc(rpc_world):
    builder, issuer, bus, client = rpc_world
    tips = client.call("ci", "certify_range", list(builder.blocks[1:6]))
    assert len(tips) == 5
    assert [tip.header.height for tip in tips] == [1, 2, 3, 4, 5]
    assert tips[-1].certificate == issuer.latest_certificate
    assert "history" in tips[-1].index_certificates
    # The issuer committed the blocks; a follow-up latest_tip agrees.
    latest = client.call("ci", "latest_tip")
    assert latest.header == tips[-1].header


def test_certify_range_rejects_bad_arguments(rpc_world):
    _, _, _, client = rpc_world
    with pytest.raises(CertificateError):
        client.call("ci", "certify_range", [])
    with pytest.raises(CertificateError):
        client.call("ci", "certify_range", ["not-a-block"])


def test_certify_range_propagates_validation_errors(rpc_world):
    builder, issuer, _, client = rpc_world
    # Skipping a height breaks the chain linkage check.
    with pytest.raises(Exception) as excinfo:
        client.call("ci", "certify_range", [builder.blocks[2]])
    assert "height" in str(excinfo.value) or "prev" in str(excinfo.value).lower()
    # The issuer is unharmed and can still certify the proper range.
    tips = client.call("ci", "certify_range", list(builder.blocks[1:3]))
    assert len(tips) == 2
