"""The metrics registry: counters, gauges, histograms, the switch."""

import json

import pytest

from repro import obs
from repro.net import wire
from repro.obs.metrics import Histogram, MetricsRegistry


def test_counters_accumulate():
    registry = MetricsRegistry()
    registry.inc("a")
    registry.inc("a", 4)
    registry.inc("b", 2.5)
    assert registry.counters == {"a": 5, "b": 2.5}


def test_gauges_overwrite():
    registry = MetricsRegistry()
    registry.set_gauge("g", 10)
    registry.set_gauge("g", 3)
    assert registry.gauges == {"g": 3}


def test_histogram_bucketing():
    hist = Histogram(boundaries=(1.0, 10.0, 100.0))
    for value in (0.5, 1.0, 5.0, 100.0, 1e6):
        hist.observe(value)
    snap = hist.snapshot()
    assert snap["count"] == 5
    assert snap["min"] == 0.5
    assert snap["max"] == 1e6
    # Upper-inclusive buckets, with [None, n] as the overflow bucket.
    assert snap["buckets"] == [[1.0, 2], [10.0, 1], [100.0, 1], [None, 1]]
    assert hist.mean() == pytest.approx(sum((0.5, 1.0, 5.0, 100.0, 1e6)) / 5)


def test_histogram_boundaries_fixed_at_creation():
    registry = MetricsRegistry()
    registry.observe("h", 1.0, boundaries=(5.0,))
    registry.observe("h", 2.0, boundaries=(99.0,))  # ignored: not first
    assert registry.histograms["h"].boundaries == (5.0,)


def test_disabled_helpers_record_nothing():
    assert not obs.enabled()
    obs.inc("nope")
    obs.set_gauge("nope", 1)
    obs.observe("nope", 1.0)
    snap = obs.snapshot()
    assert snap["counters"] == {}
    assert snap["gauges"] == {}
    assert snap["histograms"] == {}


def test_enabled_helpers_record():
    with obs.observability():
        obs.inc("c", 2)
        obs.set_gauge("g", 7)
        obs.observe("h", 3.0)
    snap = obs.snapshot()
    assert snap["counters"] == {"c": 2}
    assert snap["gauges"] == {"g": 7}
    assert snap["histograms"]["h"]["count"] == 1


def test_observability_restores_previous_state():
    obs.set_enabled(True)
    with obs.observability(False):
        assert not obs.enabled()
    assert obs.enabled()
    obs.set_enabled(False)
    with obs.observability():
        assert obs.enabled()
    assert not obs.enabled()


def test_reset_clears_everything():
    with obs.observability():
        obs.inc("c")
        obs.observe("h", 1.0)
        with obs.trace_span("s"):
            pass
    obs.reset()
    snap = obs.snapshot()
    assert snap == {"counters": {}, "gauges": {}, "histograms": {}, "spans": []}


def test_snapshot_round_trips_through_wire_codec():
    with obs.observability():
        obs.inc("requests", 3)
        obs.set_gauge("storage", 2971.0)
        obs.observe("latency_ms", 0.42)
        obs.observe("bytes", 700, boundaries=obs.SIZE_BYTES_BUCKETS)
        with obs.trace_span("outer"):
            with obs.trace_span("inner"):
                pass
    snap = obs.snapshot()
    assert wire.decode(wire.encode(snap)) == snap
    # And it is plain JSON too (what `repro metrics --json` prints).
    assert json.loads(json.dumps(snap)) == snap


def test_span_buffer_is_bounded():
    registry = MetricsRegistry(max_spans=3)
    for index in range(10):
        registry.record_span({"name": f"s{index}"})
    assert [span["name"] for span in registry.spans] == ["s7", "s8", "s9"]
