"""Observability tests share one global registry — keep it clean."""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.registry().reset()
    obs.set_virtual_clock(None)
    yield
    obs.set_enabled(False)
    obs.set_virtual_clock(None)
    obs.registry().reset()
