"""End-to-end instrumentation: the hot paths feed the registry."""

import pytest

from repro import obs
from repro.chain.genesis import make_genesis
from repro.core.issuer import CertificateIssuer
from repro.core.superlight import SuperlightClient
from repro.net.bus import MessageBus
from repro.net.faults import FaultInjector, LinkFaults
from repro.net.rpc import RetryPolicy, RpcClient, RpcServer
from repro.query.api import HistoryQuery
from repro.query.indexes import AccountHistoryIndexSpec
from repro.query.provider import QueryServiceProvider
from repro.sgx.attestation import AttestationService
from tests.conftest import fresh_vm


@pytest.fixture()
def observed_issuer(kv_chain):
    """A CI that certified three blocks with observability on."""
    genesis, state = make_genesis()
    issuer = CertificateIssuer(
        genesis, state, fresh_vm(), kv_chain.pow,
        index_specs=[AccountHistoryIndexSpec(name="history")],
        ias=AttestationService(seed=b"obs-ias"),
        key_seed=b"obs-enclave",
    )
    with obs.observability():
        for block in kv_chain.blocks[1:4]:
            issuer.process_block(block)
    return issuer


def test_enclave_and_issuer_metrics(observed_issuer):
    snap = obs.snapshot()
    counters = snap["counters"]
    assert counters["sgx.ecalls"] > 0
    assert counters["issuer.certs_issued"] == 3
    assert counters["issuer.index_certs_issued"] == 3
    hists = snap["histograms"]
    assert hists["issuer.gen_cert_ms"]["count"] == 3
    assert hists["issuer.update_proof_bytes"]["count"] == 3
    assert hists["issuer.index_certification_ms"]["count"] == 3
    assert hists["issuer.index_proof_bytes"]["min"] > 0
    assert snap["gauges"]["sgx.peak_epc_bytes"] > 0
    # Per-ecall latency histograms are keyed by entry point.
    assert any(name.startswith("sgx.ecall_ms.") for name in hists)


def test_client_metrics(observed_issuer):
    client = SuperlightClient(
        observed_issuer.measurement, observed_issuer.ias.public_key
    )
    tip = observed_issuer.certified[-1]
    with obs.observability():
        obs.reset()
        client.validate_chain(tip.block.header, tip.certificate)
        client.validate_index_certificate(
            "history", tip.block.header,
            tip.index_roots["history"], tip.index_certificates["history"],
        )
        answer = observed_issuer.indexes["history"].query_history("k1", 1, 3)
        request = HistoryQuery(index="history", account="k1", t_from=1, t_to=3)
        from repro.query.api import QueryAnswer

        assert client.verify_answer(
            request, QueryAnswer(request=request, payload=answer)
        )
    snap = obs.snapshot()
    assert snap["counters"]["client.chain_validations"] == 1
    assert snap["counters"]["client.index_certs_adopted"] == 1
    assert snap["counters"]["client.verify_ok"] == 1
    assert snap["gauges"]["client.storage_bytes"] == client.storage_bytes()
    assert snap["histograms"]["client.validate_chain_ms"]["count"] == 1
    assert snap["histograms"]["client.verify_answer_ms"]["count"] == 1


def test_rpc_and_bus_metrics():
    bus = MessageBus(default_latency_ms=10.0)
    server = RpcServer(bus, "server")
    server.register("echo", lambda argument: argument)
    client = RpcClient(
        bus, "caller", RetryPolicy(timeout_ms=100.0, max_attempts=2)
    )
    with obs.observability():
        obs.set_virtual_clock(lambda: bus.clock_ms)
        assert client.call("server", "echo", "hello") == "hello"
    snap = obs.snapshot()
    counters = snap["counters"]
    assert counters["rpc.client.calls"] == 1
    assert counters["rpc.server.requests.echo"] == 1
    assert counters["net.bus.deliveries"] >= 2  # request + response
    assert counters["rpc.client.bytes_sent"] > 0
    assert counters["rpc.server.bytes_sent"] > 0
    # The per-method latency histogram runs on the virtual clock: one
    # round trip over two 10 ms links.
    call_hist = snap["histograms"]["rpc.client.call_ms.echo"]
    assert call_hist["count"] == 1
    assert call_hist["min"] == 20.0
    assert snap["histograms"]["rpc.server.handle_ms.echo"]["count"] == 1


def test_fault_and_retry_metrics():
    bus = MessageBus(default_latency_ms=5.0)
    injector = FaultInjector(seed=3, default=LinkFaults(drop_rate=1.0))
    bus.install_faults(injector)
    server = RpcServer(bus, "server")
    server.register("echo", lambda argument: argument)
    client = RpcClient(
        bus, "caller", RetryPolicy(timeout_ms=20.0, max_attempts=2)
    )
    from repro.errors import RpcTimeoutError

    with obs.observability():
        with pytest.raises(RpcTimeoutError):
            client.call("server", "echo", "lost")
    counters = obs.snapshot()["counters"]
    assert counters["net.faults.dropped"] == 2
    assert counters["rpc.client.timeouts"] == 2
    assert counters["rpc.client.retries"] == 1


def test_query_provider_metrics(kv_chain):
    genesis, state = make_genesis()
    provider = QueryServiceProvider(
        genesis, state, fresh_vm(), kv_chain.pow,
        [AccountHistoryIndexSpec(name="history")],
    )
    for block in kv_chain.blocks[1:4]:
        provider.ingest_block(block)
    with obs.observability():
        answer = provider.execute(
            HistoryQuery(index="history", account="k1", t_from=1, t_to=3)
        )
    snap = obs.snapshot()
    assert snap["counters"]["query.requests.HistoryQuery"] == 1
    proof_hist = snap["histograms"]["query.proof_bytes"]
    assert proof_hist["count"] == 1
    assert proof_hist["min"] == answer.proof_size_bytes()
    assert snap["histograms"]["query.execute_ms"]["count"] == 1


def test_instrumented_paths_record_nothing_when_disabled(kv_chain):
    genesis, state = make_genesis()
    provider = QueryServiceProvider(
        genesis, state, fresh_vm(), kv_chain.pow,
        [AccountHistoryIndexSpec(name="history")],
    )
    for block in kv_chain.blocks[1:3]:
        provider.ingest_block(block)
    assert not obs.enabled()
    provider.execute(
        HistoryQuery(index="history", account="k1", t_from=1, t_to=2)
    )
    snap = obs.snapshot()
    assert snap["counters"] == {}
    assert snap["histograms"] == {}
    assert snap["spans"] == []
