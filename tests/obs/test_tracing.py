"""Trace spans: nesting, the null path, wall + virtual clocks."""

from repro import obs
from repro.obs.tracing import _NULL_SPAN, current_span, trace_span


def test_disabled_returns_shared_null_span():
    assert not obs.enabled()
    span = trace_span("anything")
    assert span is _NULL_SPAN
    with span:
        pass
    assert obs.snapshot()["spans"] == []
    assert obs.snapshot()["histograms"] == {}


def test_span_records_histogram_and_span_entry():
    with obs.observability():
        with trace_span("unit.work"):
            pass
    snap = obs.snapshot()
    assert snap["histograms"]["unit.work_ms"]["count"] == 1
    (span,) = snap["spans"]
    assert span["name"] == "unit.work"
    assert span["parent"] is None
    assert span["depth"] == 0
    assert span["wall_ms"] >= 0.0
    assert span["vclock_ms"] is None  # no virtual clock installed


def test_spans_nest_with_parent_and_depth():
    with obs.observability():
        with trace_span("outer"):
            assert current_span() == "outer"
            with trace_span("inner"):
                assert current_span() == "inner"
        assert current_span() is None
    spans = {span["name"]: span for span in obs.snapshot()["spans"]}
    assert spans["inner"]["parent"] == "outer"
    assert spans["inner"]["depth"] == 1
    assert spans["outer"]["parent"] is None
    assert spans["outer"]["depth"] == 0
    # Inner exits first, so it is recorded first.
    assert [span["name"] for span in obs.snapshot()["spans"]] == [
        "inner", "outer",
    ]


def test_virtual_clock_stamped_on_spans():
    clock = {"now": 100.0}
    obs.set_virtual_clock(lambda: clock["now"])
    with obs.observability():
        with trace_span("rpc.call"):
            clock["now"] += 250.0  # simulated network time passes
    (span,) = obs.snapshot()["spans"]
    assert span["vclock_ms"] == 250.0


def test_span_started_enabled_records_even_if_disabled_midway():
    obs.set_enabled(True)
    span = trace_span("flipped")
    with span:
        obs.set_enabled(False)
    assert [s["name"] for s in obs.snapshot()["spans"]] == ["flipped"]
