"""Chaos for the push tier: hub crashes mid-fanout, lossy links, lag.

The main chaos sweep (tests/fault/test_chaos_sweep.py) skips the
``pubsub.*`` crashpoints — they live in the fan-out path, not the
certification workload — and this file sweeps them instead: the hub
"dies" at each point, a replacement hub is remounted on the same
endpoint (stream position recovered from the issuer's certified count,
catch-up history re-announced), and every subscriber must converge to
the certified tip through the heartbeat/resync path.

The invariant throughout: chaos may delay tips, it must never forge
them — a client only ever adopts announcements that pass the standard
certificate checks.
"""

import pytest

from repro.chain import ChainBuilder
from repro.core import (
    CertificateIssuer,
    ClientConfig,
    IssuerService,
    compute_expected_measurement,
    connect,
)
from repro.fault.crashpoints import SimulatedCrash, crash_armed
from repro.net import FaultInjector, LinkFaults, MessageBus
from repro.net.pubsub import SubscriptionHub
from repro.query.indexes import AccountHistoryIndexSpec
from repro.sgx.attestation import AttestationService
from repro.chain.genesis import make_genesis
from tests.conftest import fresh_vm, make_kv_tx

pytestmark = pytest.mark.chaos

PUBSUB_POINTS = (
    "pubsub.publish.pre",
    "pubsub.deliver.pre",
    "pubsub.publish.post",
)

CLIENTS = ("c1", "c2", "c3")


@pytest.fixture(scope="module")
def chain(user_keypair):
    builder = ChainBuilder(difficulty_bits=4, network="pubsub-chaos")
    nonce = 0
    for _ in range(10):
        builder.add_block([
            make_kv_tx(user_keypair, nonce, f"k{nonce % 3}", f"v{nonce}")
        ])
        nonce += 1
    return builder


def build_world(chain, **hub_kwargs):
    bus = MessageBus(default_latency_ms=5.0)
    injector = FaultInjector(seed=23)
    bus.install_faults(injector)
    spec = AccountHistoryIndexSpec(name="history")
    genesis, state = make_genesis(network="pubsub-chaos")
    ias = AttestationService(seed=b"pubsub-chaos-ias")
    issuer = CertificateIssuer(
        genesis, state, fresh_vm(), chain.pow,
        index_specs=[spec], ias=ias, key_seed=b"pubsub-chaos-enclave",
    )
    service = IssuerService(bus, "ci", issuer)
    hub = SubscriptionHub.embedded(service, **hub_kwargs)
    hub.attach(issuer)
    measurement = compute_expected_measurement(
        genesis.header.header_hash(), ias.public_key, fresh_vm(),
        chain.pow.difficulty_bits, {spec.name: spec},
    )
    clients = [
        connect(ClientConfig(
            measurement=measurement, ias_public_key=ias.public_key,
            bus=bus, name=name, issuers=("ci",), hub="ci", subscribe=True,
        ))
        for name in CLIENTS
    ]
    return bus, injector, issuer, service, hub, clients


def remount_hub(service, issuer, old_hub):
    """A fresh hub process on the same endpoint, as a supervisor would
    restart it: the stream position comes from the issuer's certified
    count and the catch-up history is re-announced from it."""
    old_hub.detach()
    hub = SubscriptionHub(server=service.server)
    hub.attach(issuer, announce_existing=True)
    return hub


def converge(bus, clients):
    """Drain the bus, then run one heartbeat round and drain again."""
    bus.run_until_idle()
    for client in clients:
        client.heartbeat()
    bus.run_until_idle()


@pytest.mark.parametrize("point", PUBSUB_POINTS)
def test_hub_crash_at_every_fanout_point_recovers(chain, point):
    """Crash the hub at each pubsub crashpoint mid-publish; after a
    remount every subscriber converges to the full certified tip."""
    bus, injector, issuer, service, hub, clients = build_world(chain)
    for block in chain.blocks[1:3]:
        issuer.process_block(block)
    bus.run_until_idle()
    assert all(c.latest_header.height == 2 for c in clients)

    with crash_armed(point, hit=1) as schedule:
        with pytest.raises(SimulatedCrash):
            issuer.process_block(chain.blocks[3])
    assert schedule.fired, f"{point!r} never fired during fan-out"
    # The block *was* certified — the crash hit the announcement path.
    assert issuer.certified[-1].block.header.height == 3

    hub = remount_hub(service, issuer, hub)
    assert hub.seq == len(issuer.certified)
    converge(bus, clients)
    for client in clients:
        assert client.latest_header.height == 3
        assert client.client.certified_index_root("history") is not None
    # Survivors keep streaming after the restart.
    issuer.process_block(chain.blocks[4])
    bus.run_until_idle()
    assert all(c.latest_header.height == 4 for c in clients)


def test_crash_mid_fanout_leaves_no_partial_delivery_visible(chain):
    """``pubsub.deliver.pre`` on a later hit kills the hub after some
    subscribers were already sent to — the classic partial fan-out.
    Nobody may end up on a forged or half-announced tip."""
    bus, injector, issuer, service, hub, clients = build_world(chain)
    issuer.process_block(chain.blocks[1])
    bus.run_until_idle()

    with crash_armed("pubsub.deliver.pre", hit=2) as schedule:
        with pytest.raises(SimulatedCrash):
            issuer.process_block(chain.blocks[2])
    assert schedule.fired
    bus.run_until_idle()
    # At most one subscriber got the push before the crash; whatever
    # was delivered verified fine, nothing else moved.
    heights = sorted(c.latest_header.height for c in clients)
    assert heights[0] == 1 and heights[-1] <= 2

    hub = remount_hub(service, issuer, hub)
    converge(bus, clients)
    assert all(c.latest_header.height == 2 for c in clients)
    assert all(c.push_rejected == 0 for c in clients)


def test_lossy_links_never_forge_only_delay(chain):
    """30% loss in both directions on every subscriber link: with
    heartbeats, every client still converges, and no announcement is
    ever adopted unverified."""
    from repro.errors import NetworkError

    bus, injector, issuer, service, hub, clients = build_world(chain)
    for name in CLIENTS:
        injector.set_link("ci", name, LinkFaults(drop_rate=0.3))
        injector.set_link(name, "ci", LinkFaults(drop_rate=0.3))

    for block in chain.blocks[1:8]:
        issuer.process_block(block)
        bus.run_until_idle()
        for client in clients:
            try:
                client.heartbeat()
            except NetworkError:
                pass  # a heartbeat lost to the storm; the next one lands
        bus.run_until_idle()

    # The storm passes; one clean heartbeat round converges everyone.
    for name in CLIENTS:
        injector.set_link("ci", name, LinkFaults())
        injector.set_link(name, "ci", LinkFaults())
    converge(bus, clients)

    for client in clients:
        assert client.latest_header.height == 7
        assert client.push_rejected == 0
        # Loss shows up as retransmits/resyncs, never as forged tips.
        assert client.push_adopted + client.push_resyncs > 0
    summary = injector.summary()
    assert any(counts.get("dropped", 0) for counts in summary.values())


def test_burst_lags_every_subscriber_then_one_heartbeat_recovers(chain):
    """A tiny outbox against a burst: the hub drops oldest, marks the
    subscribers lagged, and one heartbeat round later everyone is back
    at the tip with lag state cleared."""
    bus, injector, issuer, service, hub, clients = build_world(
        chain, window=1, outbox_limit=2
    )
    # The burst: publish 6 blocks before any delivery happens.
    for block in chain.blocks[1:7]:
        issuer.process_block(block)
    for client in clients:
        state = hub.subscribers[client.rpc.name]
        assert state.lagged and state.dropped_oldest >= 1
    bus.run_until_idle()
    assert all(c._needs_resync for c in clients)
    converge(bus, clients)
    for client in clients:
        assert client.latest_header.height == 6
        assert client.push_resyncs >= 1
        assert not hub.subscribers[client.rpc.name].lagged
    assert hub.resyncs >= len(clients)
