"""The chaos sweep: crash at every cataloged point, recover, compare.

Knobs (mirroring ``tests/proptest/framework.py``):

* ``REPRO_CHAOS_SEED=n`` — base seed for the randomized extra cases
  (and the byte-level cut positions of torn writes).
* ``REPRO_CHAOS_CASES=n`` — how many extra randomized (point, hit,
  seed) cases to run on top of the exhaustive hit=1 sweep.
* ``REPRO_CHAOS_REPLAY=point:hit:seed`` — run exactly one case.

Any failure message contains the copy-pasteable replay command.
"""

import os
import random

import pytest

from repro.fault import chaos
from repro.fault.crashpoints import CATALOG

pytestmark = pytest.mark.chaos

DEFAULT_SEED = 0xC4A05
DEFAULT_EXTRA_CASES = 6


def _base_seed() -> int:
    return int(os.environ.get("REPRO_CHAOS_SEED", DEFAULT_SEED))


def _extra_cases() -> int:
    return int(os.environ.get("REPRO_CHAOS_CASES", DEFAULT_EXTRA_CASES))


def _replay_command(point: str, hit: int, seed: int) -> str:
    return (
        f"REPRO_CHAOS_REPLAY={point}:{hit}:{seed} "
        "PYTHONPATH=src python -m pytest tests/fault/test_chaos_sweep.py -q"
    )


@pytest.fixture(scope="module")
def world():
    return chaos.build_world()


@pytest.fixture(scope="module")
def baseline(world, tmp_path_factory):
    tmp = tmp_path_factory.mktemp("chaos-baseline")
    durable = chaos.run_baseline(world, tmp)
    return chaos.certificate_bytes(durable.issuer), durable.pk_enc.to_bytes()


def _run(world, tmp_path, baseline, point, hit, seed):
    fingerprint, pk = baseline
    try:
        return chaos.run_case(
            world, tmp_path, fingerprint, pk, point, hit=hit, seed=seed
        )
    except AssertionError as exc:
        raise AssertionError(
            f"chaos case ({point}, hit={hit}, seed={seed}) failed: {exc}\n"
            f"replay just this case with:\n"
            f"  {_replay_command(point, hit, seed)}"
        ) from exc


def test_sweep_every_crashpoint(world, tmp_path, baseline):
    """Exhaustive hit=1 sweep: every cataloged point must crash the
    workload and recover to the byte-identical baseline."""
    replay = os.environ.get("REPRO_CHAOS_REPLAY")
    if replay is not None:
        point, hit, seed = replay.rsplit(":", 2)
        outcome = _run(world, tmp_path, baseline, point, int(hit), int(seed))
        assert outcome.crashed
        return
    seed = _base_seed()
    for point in CATALOG:
        if point.startswith("query."):
            # The query-service points live in the SP serving path, not
            # this certification workload; tests/fault/test_fleet_chaos.py
            # sweeps them against the replica fleet.
            continue
        if point.startswith("pubsub."):
            # The hub points live in the push fan-out path;
            # tests/fault/test_pubsub_chaos.py sweeps them against a
            # subscribed client fleet.
            continue
        outcome = _run(world, tmp_path, baseline, point, 1, seed)
        # hit=1 must actually crash — otherwise the crashpoint is dead
        # instrumentation and the sweep is vacuous.
        assert outcome.crashed, (
            f"crashpoint {point!r} never fired during the chaos workload"
        )


def test_randomized_extra_cases(world, tmp_path, baseline):
    """Seeded random (point, hit, seed) cases reach later arrivals —
    crashes past checkpoints, mid-pipeline, on re-staged batches."""
    if os.environ.get("REPRO_CHAOS_REPLAY") is not None:
        pytest.skip("replaying a single chaos case")
    rng = random.Random(_base_seed())
    for _ in range(_extra_cases()):
        point = rng.choice(CATALOG)
        hit = rng.randint(1, 12)
        seed = rng.randrange(2**16)
        outcome = _run(world, tmp_path, baseline, point, hit, seed)
        # Late hits may never arrive (workload finished first): then the
        # run completed uncrashed and recovery of the *complete* archive
        # must still be byte-identical — which _run already asserted.
        assert outcome.recovered_height >= 0


def test_late_crash_recovers_through_checkpoint(world, tmp_path, baseline):
    """A crash late in the workload recovers from the sealed checkpoint
    with only the WAL tail replayed through the enclave."""
    if os.environ.get("REPRO_CHAOS_REPLAY") is not None:
        pytest.skip("replaying a single chaos case")
    outcome = _run(world, tmp_path, baseline, "wal.append.pre_write", 12, 0)
    assert outcome.crashed
    assert outcome.checkpoint_used
    assert outcome.replayed_blocks <= chaos._CHECKPOINT_INTERVAL
