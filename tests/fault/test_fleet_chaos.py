"""Chaos against the replicated query tier.

The claim under test: whatever the fault layer does to individual
replicas — crashes at the query.execute.* crashpoints, dropped links,
forged answers — a client fronted by the QueryGateway always ends a
query with either a **verified** answer or a **typed** error.  Never a
stale or unverified answer, never an unbounded hang.

Crashed replicas are supervised (ServiceSupervisor): the crash pauses
the endpoint (requests vanish like against a dead host), the supervisor
restores it after bounded backoff, and the gateway's probe path brings
it back into rotation — composing PR 4's crash-restart loop with this
PR's health-aware routing.
"""

import random
from dataclasses import replace

import pytest

from repro.core import (
    IssuerService,
    ClientConfig,
    connect,
    compute_expected_measurement,
)
from repro.errors import ReproError
from repro.fault.crashpoints import crash_armed
from repro.net import (
    FaultInjector,
    HealthPolicy,
    LinkFaults,
    MessageBus,
    QueryGateway,
    RetryPolicy,
    RpcResponse,
    ServiceSupervisor,
    wire,
)
from repro.net.supervisor import RestartPolicy
from repro.query import HistoryQuery, KeywordQuery, QueryAnswer, QueryService
from repro.query.provider import QueryServiceProvider
from repro.chain.genesis import make_genesis
from tests.conftest import fresh_vm

pytestmark = pytest.mark.chaos

REPLICAS = ("sp1", "sp2", "sp3")


@pytest.fixture(scope="module")
def fleet_world(certified_setup):
    chain = certified_setup["chain"]
    genesis, state = make_genesis()
    provider = QueryServiceProvider(
        genesis, state, fresh_vm(), chain.pow,
        list(certified_setup["specs"].values()),
    )
    for block in chain.blocks[1:]:
        provider.ingest_block(block)
    measurement = compute_expected_measurement(
        certified_setup["genesis"].header.header_hash(),
        certified_setup["ias"].public_key,
        fresh_vm(),
        chain.pow.difficulty_bits,
        certified_setup["specs"],
    )
    return {
        "issuer": certified_setup["issuer"],
        "ias": certified_setup["ias"],
        "provider": provider,
        "measurement": measurement,
    }


def make_fleet(fleet_world, *, injector=None, seed=0):
    bus = MessageBus(default_latency_ms=10.0)
    if injector is not None:
        bus.install_faults(injector)
    IssuerService(bus, "ci", fleet_world["issuer"])
    provider = fleet_world["provider"]
    services, supervisors = {}, {}
    for name in REPLICAS:
        service = QueryService(bus, name, provider)
        services[name] = service
        supervisors[name] = ServiceSupervisor(
            service,
            lambda: provider,  # a read-only SP restarts with state intact
            policy=RestartPolicy(backoff_base_ms=80.0, backoff_max_ms=400.0),
        )
    gateway = QueryGateway(
        bus, "gw", REPLICAS,
        balancer="seeded-random", seed=seed,
        policy=RetryPolicy(timeout_ms=120.0, max_attempts=1),
        health=HealthPolicy(failure_threshold=1, probe_base_ms=150.0),
    )
    client = connect(ClientConfig(
        measurement=fleet_world["measurement"],
        ias_public_key=fleet_world["ias"].public_key,
        bus=bus, name="client",
        issuers=("ci",), gateway=gateway,
    ))
    client.bootstrap()
    return bus, client, gateway, services, supervisors


REQUESTS = tuple(
    HistoryQuery(index="history", account=f"k{i}", t_from=1, t_to=10)
    for i in range(4)
) + (KeywordQuery(index="keyword", keywords=("v2",)),)


def test_crash_sweep_client_always_gets_verified_answer(fleet_world):
    """Sweep both query crashpoints over several hits and seeds: every
    query ends in a verified answer (failover) or a typed error."""
    fired = 0
    for point in ("query.execute.pre", "query.execute.post"):
        for hit in (1, 2, 4):
            for seed in (0, 1):
                bus, client, gateway, services, supervisors = make_fleet(
                    fleet_world, seed=seed
                )
                with crash_armed(point, hit=hit, seed=seed) as schedule:
                    for request in REQUESTS:
                        try:
                            answer = client.query(request)
                        except ReproError:
                            continue  # typed failure: acceptable
                        assert isinstance(answer, QueryAnswer)
                        assert client.client.verify_answer(request, answer)
                if schedule.fired:
                    fired += 1
                    crashed = [
                        s for s in supervisors.values() if s.crashes >= 1
                    ]
                    assert crashed, "a crash must be seen by a supervisor"
    assert fired >= 8, "the sweep must actually exercise crashes"


def test_crashed_replica_is_restarted_and_probed_back(fleet_world):
    bus, client, gateway, services, supervisors = make_fleet(fleet_world)
    with crash_armed("query.execute.pre", hit=1) as schedule:
        answer = client.query(REQUESTS[0])
    assert schedule.fired
    assert isinstance(answer, QueryAnswer)  # failover served it
    crashed_name = next(
        name for name, sup in supervisors.items() if sup.crashes == 1
    )
    assert not gateway.replicas[crashed_name].healthy
    # Supervisor restores the endpoint; the gateway probe readmits it.
    bus.run_for(600.0)
    for i in range(12):
        client.query(
            HistoryQuery(index="history", account=f"k{i % 4}", t_from=1, t_to=i + 1)
        )
    assert supervisors[crashed_name].restarts == 1
    assert gateway.replicas[crashed_name].healthy


def test_dropped_links_sweep(fleet_world):
    """Two of three replicas behind lossy links across seeds: the fleet
    still serves verified answers."""
    for seed in (1, 2, 3):
        injector = FaultInjector(seed=seed)
        for sp in ("sp1", "sp2"):
            injector.set_link("gw", sp, LinkFaults(drop_rate=0.6))
            injector.set_link(sp, "gw", LinkFaults(drop_rate=0.6))
        bus, client, gateway, services, supervisors = make_fleet(
            fleet_world, injector=injector, seed=seed
        )
        for request in REQUESTS:
            answer = client.query(request)
            assert client.client.verify_answer(request, answer)


def test_forged_fleet_answers_detected_never_accepted(fleet_world):
    """A replica serving forged answers is caught by verification and
    the client completes against an honest replica."""

    class ForgeAlways:
        def __init__(self):
            self.struck = 0

        def __call__(self, message, rng: random.Random):
            if not isinstance(message, RpcResponse) or not message.ok:
                return message
            decoded = wire.decode(message.payload)
            if not isinstance(decoded, QueryAnswer):
                return message
            versions = getattr(decoded.payload, "versions", ())
            if not versions:
                return message
            self.struck += 1
            forged = replace(
                decoded,
                payload=replace(decoded.payload, versions=versions[:-1]),
            )
            return replace(message, payload=wire.encode(forged))

    forge = ForgeAlways()
    injector = FaultInjector(seed=5)
    injector.set_link(
        "sp1", "gw", LinkFaults(corrupt_rate=1.0, corrupter=forge)
    )
    bus, client, gateway, services, supervisors = make_fleet(
        fleet_world, injector=injector
    )
    served = 0
    for account in ("k0", "k1", "k2", "k3"):
        request = HistoryQuery(index="history", account=account, t_from=1, t_to=10)
        try:
            answer = client.query(request)
        except ReproError:
            continue  # typed failure: acceptable, never a silent forgery
        assert client.client.verify_answer(request, answer)
        served += 1
    assert served >= 2
    if forge.struck:
        assert client.integrity_failures >= 1


def test_fleet_answers_match_local_execute_byte_for_byte(fleet_world):
    bus, client, gateway, services, supervisors = make_fleet(fleet_world)
    provider = fleet_world["provider"]
    for request in REQUESTS:
        remote = client.query(request)
        assert wire.encode(remote) == wire.encode(provider.execute(request))
