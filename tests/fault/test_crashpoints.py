"""Crashpoint registry mechanics: scheduling, determinism, hygiene."""

import pytest

from repro.fault.crashpoints import (
    CATALOG,
    CrashSchedule,
    SimulatedCrash,
    active_schedule,
    crash_armed,
    crashpoint,
    torn_prefix,
)

pytestmark = pytest.mark.chaos


def test_crashpoint_is_noop_when_disarmed():
    crashpoint("wal.append.pre_write")  # must not raise
    assert active_schedule() is None


def test_uncataloged_name_fails_loudly_when_disarmed():
    with pytest.raises(AssertionError):
        # repro: allow[CAT01] deliberately uncataloged name; asserts the loud failure
        crashpoint("not.a.real.point")


def test_schedule_rejects_unknown_point_and_bad_hit():
    with pytest.raises(ValueError):
        # repro: allow[CAT01] deliberately uncataloged name; asserts the loud failure
        CrashSchedule("not.a.real.point")
    with pytest.raises(ValueError):
        CrashSchedule("wal.append.pre_write", hit=0)


def test_armed_schedule_fires_on_scheduled_hit():
    with crash_armed("wal.append.pre_write", hit=3) as schedule:
        crashpoint("wal.append.pre_write")
        crashpoint("wal.append.pre_write")
        with pytest.raises(SimulatedCrash) as crash:
            crashpoint("wal.append.pre_write")
        assert crash.value.point == "wal.append.pre_write"
        assert crash.value.hit == 3
        assert schedule.fired
        # A fired schedule never fires again (the process died once).
        crashpoint("wal.append.pre_write")
    assert active_schedule() is None


def test_other_points_do_not_fire():
    with crash_armed("wal.append.post_fsync") as schedule:
        crashpoint("wal.append.pre_write")
        crashpoint("enclave.ecall.pre")
        assert not schedule.fired


def test_simulated_crash_evades_except_exception():
    """The whole point of BaseException: cleanup paths that catch
    Exception must not swallow a dying process."""
    with crash_armed("enclave.ecall.pre"):
        with pytest.raises(SimulatedCrash):
            try:
                crashpoint("enclave.ecall.pre")
            except Exception:  # noqa: BLE001 - the pattern under test
                pytest.fail("SimulatedCrash was caught by 'except Exception'")


def test_torn_prefix_deterministic_and_interior():
    cuts = []
    for _ in range(2):
        with crash_armed("wal.append.torn_write", seed=7):
            cut = torn_prefix("wal.append.torn_write", 100)
        cuts.append(cut)
    assert cuts[0] == cuts[1]  # same (point, seed) -> same cut
    assert 1 <= cuts[0] <= 99  # strictly inside the payload
    with crash_armed("wal.append.torn_write", seed=8):
        other = torn_prefix("wal.append.torn_write", 100)
    assert other != cuts[0] or True  # different seed may differ (no crash)


def test_torn_prefix_not_due_returns_none():
    with crash_armed("wal.append.torn_write", hit=2):
        assert torn_prefix("wal.append.torn_write", 100) is None  # hit 1 of 2
    assert torn_prefix("wal.append.torn_write", 100) is None  # disarmed


def test_nested_arming_restores_outer():
    with crash_armed("wal.append.pre_write") as outer:
        with crash_armed("enclave.ecall.pre"):
            assert active_schedule().point == "enclave.ecall.pre"
        assert active_schedule() is outer


def test_catalog_names_are_unique_and_namespaced():
    assert len(set(CATALOG)) == len(CATALOG)
    for name in CATALOG:
        assert "." in name
