"""Partial SMT: the enclave's proof-reconstructed state slice."""

import pytest

from repro.crypto.hashing import sha256
from repro.errors import ProofError
from repro.merkle.partial import PartialSMT
from repro.merkle.smt import SparseMerkleTree


def k(label: str) -> bytes:
    return sha256(label.encode())


@pytest.fixture()
def tree():
    tree = SparseMerkleTree(depth=64)
    for index in range(30):
        tree.update(k(f"key{index}"), b"value%d" % index)
    return tree


def entries_for(tree, labels, absent=()):
    entries = []
    for label in labels:
        key = k(label)
        entries.append((key, tree.get(key), tree.prove(key)))
    for label in absent:
        key = k(label)
        entries.append((key, None, tree.prove(key)))
    return entries


def test_from_proofs_verifies_and_reads(tree):
    partial = PartialSMT.from_proofs(tree.root, entries_for(tree, ["key1", "key2"]))
    assert partial.get(k("key1")) == b"value1"
    assert partial.covers(k("key2"))
    assert not partial.covers(k("key3"))


def test_read_outside_slice_raises(tree):
    partial = PartialSMT.from_proofs(tree.root, entries_for(tree, ["key1"]))
    with pytest.raises(ProofError):
        partial.get(k("key2"))


def test_write_outside_slice_raises(tree):
    partial = PartialSMT.from_proofs(tree.root, entries_for(tree, ["key1"]))
    with pytest.raises(ProofError):
        partial.update(k("key2"), b"x")


def test_updates_track_the_full_tree(tree):
    labels = ["key1", "key2", "key3"]
    partial = PartialSMT.from_proofs(
        tree.root, entries_for(tree, labels, absent=["fresh"])
    )
    partial.update(k("key1"), b"NEW")
    partial.update(k("fresh"), b"inserted")
    partial.update(k("key3"), None)  # delete
    tree.update(k("key1"), b"NEW")
    tree.update(k("fresh"), b"inserted")
    tree.update(k("key3"), None)
    assert partial.root == tree.root


def test_update_batch_matches_tree(tree):
    labels = [f"key{i}" for i in range(10)]
    partial = PartialSMT.from_proofs(tree.root, entries_for(tree, labels))
    writes = {k(label): b"w" + label.encode() for label in labels}
    partial.update_batch(writes)
    tree.update_batch(dict(writes))
    assert partial.root == tree.root


def test_forged_value_rejected(tree):
    key = k("key1")
    proof = tree.prove(key)
    with pytest.raises(ProofError):
        PartialSMT.from_proofs(tree.root, [(key, b"forged", proof)])


def test_wrong_root_rejected(tree):
    entries = entries_for(tree, ["key1"])
    other = SparseMerkleTree(depth=64)
    other.update(k("x"), b"y")
    with pytest.raises(ProofError):
        PartialSMT.from_proofs(other.root, entries)


def test_proof_bound_to_key(tree):
    proof = tree.prove(k("key1"))
    with pytest.raises(ProofError):
        PartialSMT.from_proofs(tree.root, [(k("key2"), b"value1", proof)])


def test_inconsistent_proofs_rejected(tree):
    """Two proofs claiming different digests for a shared node."""
    key = k("key1")
    good = tree.prove(key)
    snapshot_root = tree.root
    tree.update(k("key2"), b"changed")
    stale_root_proof = tree.prove(k("key2"))
    with pytest.raises(ProofError):
        PartialSMT.from_proofs(
            snapshot_root,
            [(key, b"value1", good), (k("key2"), b"changed", stale_root_proof)],
        )


def test_zero_proofs_rejected(tree):
    with pytest.raises(ProofError):
        PartialSMT.from_proofs(tree.root, [])


def test_non_membership_then_insert(tree):
    partial = PartialSMT.from_proofs(
        tree.root, entries_for(tree, [], absent=["newkey"])
    )
    partial.update(k("newkey"), b"v")
    tree.update(k("newkey"), b"v")
    assert partial.root == tree.root
