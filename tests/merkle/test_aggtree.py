"""Aggregate-authenticated MB-tree."""

import random

import pytest

from repro.errors import ProofError
from repro.merkle.aggtree import (
    Aggregate,
    AggregateMBTree,
    EMPTY_ROOT,
    verify_aggregate,
)


@pytest.fixture()
def tree():
    tree = AggregateMBTree(fanout=8)
    rng = random.Random(21)
    for key in rng.sample(range(10_000), 400):
        tree.insert(key, key % 97 - 48)  # mixed-sign values
    return tree


def expected_aggregate(tree, lo, hi):
    values = [tree.get(k) for k in range(lo, hi + 1) if tree.get(k) is not None]
    if not values:
        return None
    return Aggregate(
        count=len(values), total=sum(values), minimum=min(values), maximum=max(values)
    )


def test_empty_tree():
    tree = AggregateMBTree()
    assert tree.root == EMPTY_ROOT
    result, proof = tree.aggregate_query(0, 100)
    assert result is None
    assert verify_aggregate(tree.root, None, proof)


def test_aggregate_merge_identity():
    a, b = Aggregate.of_value(5), Aggregate.of_value(-3)
    merged = a.merge(b)
    assert merged == Aggregate(count=2, total=2, minimum=-3, maximum=5)


@pytest.mark.parametrize("window", [(0, 9999), (2000, 4000), (5000, 5050), (9990, 9999)])
def test_aggregate_query_matches_ground_truth(tree, window):
    lo, hi = window
    result, proof = tree.aggregate_query(lo, hi)
    assert result == expected_aggregate(tree, lo, hi)
    assert verify_aggregate(tree.root, result, proof)


def test_empty_window(tree):
    keys = sorted(k for k in range(10_000) if tree.get(k) is not None)
    gap = next((a + 1, b - 1) for a, b in zip(keys, keys[1:]) if b - a > 2)
    result, proof = tree.aggregate_query(*gap)
    assert result is None
    assert verify_aggregate(tree.root, None, proof)


def test_forged_aggregate_rejected(tree):
    result, proof = tree.aggregate_query(2000, 4000)
    assert result is not None
    forged = Aggregate(
        count=result.count, total=result.total + 1,
        minimum=result.minimum, maximum=result.maximum,
    )
    assert not verify_aggregate(tree.root, forged, proof)


def test_forged_count_rejected(tree):
    result, proof = tree.aggregate_query(2000, 4000)
    forged = Aggregate(
        count=result.count - 1, total=result.total,
        minimum=result.minimum, maximum=result.maximum,
    )
    assert not verify_aggregate(tree.root, forged, proof)


def test_wrong_root_rejected(tree):
    result, proof = tree.aggregate_query(2000, 4000)
    other = AggregateMBTree(fanout=8)
    other.insert(1, 1)
    assert not verify_aggregate(other.root, result, proof)


def test_proof_size_flat_in_window_width(tree):
    """The aggregation win: a 100-key window and a 6000-key window cost
    about the same proof bytes (only boundary paths are opened)."""
    _, narrow = tree.aggregate_query(5000, 5100)
    _, wide = tree.aggregate_query(2000, 8000)
    assert wide.size_bytes() < narrow.size_bytes() * 3


def test_overwrite_updates_aggregate(tree):
    key = next(k for k in range(10_000) if tree.get(k) is not None)
    before, _ = tree.aggregate_query(key, key)
    tree.insert(key, 1000)
    after, proof = tree.aggregate_query(key, key)
    assert after == Aggregate(count=1, total=1000, minimum=1000, maximum=1000)
    assert verify_aggregate(tree.root, after, proof)
    assert before != after


def test_inverted_range_raises(tree):
    with pytest.raises(ProofError):
        tree.aggregate_query(10, 5)


def test_single_entry_tree():
    tree = AggregateMBTree()
    tree.insert(7, -5)
    result, proof = tree.aggregate_query(0, 100)
    assert result == Aggregate(count=1, total=-5, minimum=-5, maximum=-5)
    assert verify_aggregate(tree.root, result, proof)
