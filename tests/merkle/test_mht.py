"""Binary Merkle hash tree: roots, proofs, odd shapes."""

import pytest

from repro.errors import ProofError
from repro.merkle.mht import (
    EMPTY_ROOT,
    MembershipProof,
    MerkleTree,
    compute_root,
    verify_membership,
)


def test_empty_tree_has_sentinel_root():
    assert MerkleTree([]).root == EMPTY_ROOT


def test_single_leaf_tree():
    tree = MerkleTree([b"only"])
    assert verify_membership(tree.root, b"only", tree.prove(0))


@pytest.mark.parametrize("size", [1, 2, 3, 4, 5, 7, 8, 13, 16, 33])
def test_all_leaves_provable_at_any_size(size):
    leaves = [b"leaf-%d" % index for index in range(size)]
    tree = MerkleTree(leaves)
    for index, leaf in enumerate(leaves):
        assert verify_membership(tree.root, leaf, tree.prove(index)), (size, index)


def test_proof_rejects_wrong_leaf():
    leaves = [b"a", b"b", b"c"]
    tree = MerkleTree(leaves)
    assert not verify_membership(tree.root, b"x", tree.prove(1))


def test_proof_rejects_wrong_position():
    leaves = [b"a", b"b", b"c", b"d"]
    tree = MerkleTree(leaves)
    proof = tree.prove(1)
    moved = MembershipProof(index=2, siblings=proof.siblings)
    assert not verify_membership(tree.root, b"b", moved)


def test_proof_rejects_wrong_root():
    tree_a = MerkleTree([b"a", b"b"])
    tree_b = MerkleTree([b"a", b"c"])
    assert not verify_membership(tree_b.root, b"a", tree_a.prove(0))


def test_distinct_leaf_lists_have_distinct_roots():
    # Promotion (not duplication) of odd nodes: [a, b, b] != [a, b].
    assert compute_root([b"a", b"b", b"b"]) != compute_root([b"a", b"b"])


def test_order_matters():
    assert compute_root([b"a", b"b"]) != compute_root([b"b", b"a"])


def test_prove_out_of_range_raises():
    tree = MerkleTree([b"a"])
    with pytest.raises(ProofError):
        tree.prove(1)
    with pytest.raises(ProofError):
        tree.prove(-1)


def test_proof_size_accounting():
    tree = MerkleTree([b"leaf-%d" % index for index in range(16)])
    proof = tree.prove(3)
    assert proof.size_bytes() >= 32 * 4  # four levels of siblings
