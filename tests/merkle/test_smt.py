"""Sparse Merkle tree: updates, batched updates, compressed proofs."""

import pytest

from repro.crypto.hashing import sha256
from repro.errors import StateError
from repro.merkle.smt import SparseMerkleTree, default_digests, verify_proof


def k(label: str) -> bytes:
    return sha256(label.encode())


@pytest.fixture()
def populated():
    tree = SparseMerkleTree(depth=64)
    for index in range(50):
        tree.update(k(f"key{index}"), b"value%d" % index)
    return tree


def test_empty_root_is_default(populated):
    empty = SparseMerkleTree(depth=64)
    assert empty.root == default_digests(64)[64]
    assert empty.root != populated.root


def test_get_returns_stored_values(populated):
    assert populated.get(k("key7")) == b"value7"
    assert populated.get(k("missing")) is None
    assert k("key7") in populated
    assert len(populated) == 50


def test_membership_proof_verifies(populated):
    proof = populated.prove(k("key7"))
    assert verify_proof(populated.root, k("key7"), b"value7", proof)


def test_membership_proof_rejects_wrong_value(populated):
    proof = populated.prove(k("key7"))
    assert not verify_proof(populated.root, k("key7"), b"forged", proof)


def test_non_membership_proof(populated):
    proof = populated.prove(k("missing"))
    assert verify_proof(populated.root, k("missing"), None, proof)
    assert not verify_proof(populated.root, k("missing"), b"anything", proof)


def test_membership_cannot_claim_absence(populated):
    proof = populated.prove(k("key7"))
    assert not verify_proof(populated.root, k("key7"), None, proof)


def test_delete_restores_absence(populated):
    root_before = populated.root
    populated.update(k("key7"), None)
    assert populated.get(k("key7")) is None
    proof = populated.prove(k("key7"))
    assert verify_proof(populated.root, k("key7"), None, proof)
    assert populated.root != root_before


def test_update_batch_equals_sequential_updates():
    sequential = SparseMerkleTree(depth=64)
    batched = SparseMerkleTree(depth=64)
    writes = {k(f"w{i}"): b"v%d" % i for i in range(100)}
    for key, value in writes.items():
        sequential.update(key, value)
    batched.update_batch(dict(writes))
    assert sequential.root == batched.root


def test_batch_with_deletes():
    tree = SparseMerkleTree(depth=64)
    tree.update_batch({k("a"): b"1", k("b"): b"2"})
    tree.update_batch({k("a"): None})
    only_b = SparseMerkleTree(depth=64)
    only_b.update(k("b"), b"2")
    assert tree.root == only_b.root


def test_update_order_does_not_matter():
    forward = SparseMerkleTree(depth=64)
    backward = SparseMerkleTree(depth=64)
    items = [(k(f"x{i}"), b"v%d" % i) for i in range(20)]
    for key, value in items:
        forward.update(key, value)
    for key, value in reversed(items):
        backward.update(key, value)
    assert forward.root == backward.root


def test_full_depth_256_works():
    tree = SparseMerkleTree(depth=256)
    tree.update(k("deep"), b"value")
    proof = tree.prove(k("deep"))
    assert verify_proof(tree.root, k("deep"), b"value", proof)


def test_depth_bounds_enforced():
    with pytest.raises(StateError):
        SparseMerkleTree(depth=0)
    with pytest.raises(StateError):
        SparseMerkleTree(depth=257)


def test_keys_must_be_32_bytes():
    tree = SparseMerkleTree(depth=64)
    with pytest.raises(StateError):
        tree.update(b"short", b"v")


def test_path_collision_detected_at_shallow_depth():
    # Depth 1: any two keys with the same top bit collide.
    tree = SparseMerkleTree(depth=1)
    key_a = bytes([0x00]) + bytes(31)
    key_b = bytes([0x01]) + bytes(31)  # same top bit (0), different key
    tree.update(key_a, b"a")
    with pytest.raises(StateError):
        tree.update(key_b, b"b")


def test_proof_is_compressed():
    tree = SparseMerkleTree(depth=256)
    tree.update(k("lonely"), b"v")
    proof = tree.prove(k("lonely"))
    # A single-leaf tree has all-default siblings: nothing to ship.
    assert len(proof.siblings) == 0
    assert proof.size_bytes() < 100


def test_proof_value_binding_across_truncated_paths():
    """Leaf digests fold the full key, not just path bits."""
    tree = SparseMerkleTree(depth=8)
    key = k("bound")
    tree.update(key, b"v")
    proof = tree.prove(key)
    other_key = key[:31] + bytes([key[31] ^ 1])  # same 8-bit path
    assert not verify_proof(tree.root, other_key, b"v", proof)
