"""Merkle B-tree: range queries with completeness, proof-based inserts."""

import random

import pytest

from repro.errors import ProofError
from repro.merkle.mbtree import (
    EMPTY_ROOT,
    MerkleBTree,
    apply_insert,
    verify_range,
)


@pytest.fixture()
def tree():
    tree = MerkleBTree(fanout=8)
    rng = random.Random(5)
    for key in rng.sample(range(10_000), 300):
        tree.insert(key, b"value-%d" % key)
    return tree


def expected_range(tree_keys, lo, hi):
    return sorted((k, b"value-%d" % k) for k in tree_keys if lo <= k <= hi)


def test_empty_tree():
    tree = MerkleBTree()
    assert tree.root == EMPTY_ROOT
    results, proof = tree.range_query(0, 100)
    assert results == []
    assert verify_range(tree.root, [], proof)


def test_get(tree):
    present = next(k for k in range(10_000) if tree.get(k) is not None)
    assert tree.get(present) == b"value-%d" % present


def test_insert_overwrites(tree):
    key = next(k for k in range(10_000) if tree.get(k) is not None)
    size = len(tree)
    tree.insert(key, b"new")
    assert tree.get(key) == b"new"
    assert len(tree) == size


def test_range_query_correct_and_complete(tree):
    results, proof = tree.range_query(2000, 4000)
    assert verify_range(tree.root, results, proof)
    all_keys = [k for k in range(10_000) if tree.get(k) is not None]
    assert results == expected_range(all_keys, 2000, 4000)


def test_range_rejects_dropped_result(tree):
    results, proof = tree.range_query(2000, 4000)
    assert len(results) > 1
    assert not verify_range(tree.root, results[:-1], proof)
    assert not verify_range(tree.root, results[1:], proof)


def test_range_rejects_injected_result(tree):
    results, proof = tree.range_query(2000, 4000)
    padded = results + [(3999999, b"injected")]
    assert not verify_range(tree.root, padded, proof)


def test_range_rejects_altered_value(tree):
    results, proof = tree.range_query(2000, 4000)
    altered = [(results[0][0], b"tampered")] + results[1:]
    assert not verify_range(tree.root, altered, proof)


def test_range_rejects_wrong_root(tree):
    results, proof = tree.range_query(2000, 4000)
    other = MerkleBTree(fanout=8)
    other.insert(1, b"x")
    assert not verify_range(other.root, results, proof)


def test_empty_range_window(tree):
    # A window between two existing keys.
    keys = sorted(k for k in range(10_000) if tree.get(k) is not None)
    gap_lo, gap_hi = None, None
    for a, b in zip(keys, keys[1:]):
        if b - a > 2:
            gap_lo, gap_hi = a + 1, b - 1
            break
    assert gap_lo is not None
    results, proof = tree.range_query(gap_lo, gap_hi)
    assert results == []
    assert verify_range(tree.root, [], proof)


def test_inverted_range_raises(tree):
    with pytest.raises(ProofError):
        tree.range_query(10, 5)


@pytest.mark.parametrize("fanout", [4, 8, 16])
def test_apply_insert_replays_inserts_exactly(fanout):
    tree = MerkleBTree(fanout=fanout)
    rng = random.Random(fanout)
    for key in rng.sample(range(100_000), 200):
        proof = tree.prove_insert(key)
        predicted = apply_insert(tree.root, key, b"v%d" % key, proof)
        tree.insert(key, b"v%d" % key)
        assert predicted == tree.root


def test_apply_insert_empty_tree():
    tree = MerkleBTree(fanout=8)
    proof = tree.prove_insert(42)
    predicted = apply_insert(EMPTY_ROOT, 42, b"first", proof)
    tree.insert(42, b"first")
    assert predicted == tree.root


def test_apply_insert_overwrite(tree):
    key = next(k for k in range(10_000) if tree.get(k) is not None)
    proof = tree.prove_insert(key)
    predicted = apply_insert(tree.root, key, b"replaced", proof)
    tree.insert(key, b"replaced")
    assert predicted == tree.root


def test_apply_insert_rejects_wrong_root(tree):
    proof = tree.prove_insert(77777)
    with pytest.raises(ProofError):
        apply_insert(EMPTY_ROOT, 77777, b"x", proof)


def test_apply_insert_rejects_tampered_path(tree):
    from dataclasses import replace

    proof = tree.prove_insert(77777)
    if proof.path:
        tampered = replace(proof, path=proof.path[:-1])
        with pytest.raises(ProofError):
            apply_insert(tree.root, 77777, b"x", tampered)


def test_fanout_minimum_enforced():
    with pytest.raises(ValueError):
        MerkleBTree(fanout=2)


def test_proof_sizes_scale_with_range(tree):
    _, narrow = tree.range_query(2000, 2100)
    _, wide = tree.range_query(0, 9999)
    assert narrow.size_bytes() < wide.size_bytes()
