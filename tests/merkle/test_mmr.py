"""Merkle Mountain Range: append-only accumulation and proofs."""

import pytest

from repro.errors import ProofError
from repro.merkle.mmr import EMPTY_ROOT, MerkleMountainRange, bag_peaks, verify_mmr


def test_empty_root():
    assert MerkleMountainRange().root == EMPTY_ROOT
    assert bag_peaks([]) == EMPTY_ROOT


@pytest.mark.parametrize("size", [1, 2, 3, 4, 7, 8, 15, 16, 37, 64, 100])
def test_every_leaf_provable(size):
    mmr = MerkleMountainRange()
    for index in range(size):
        mmr.append(b"leaf-%d" % index)
    root = mmr.root
    for index in range(size):
        proof = mmr.prove(index)
        assert verify_mmr(root, b"leaf-%d" % index, proof), (size, index)


def test_peak_count_matches_popcount():
    mmr = MerkleMountainRange()
    for index in range(37):  # 0b100101 -> 3 peaks
        mmr.append(b"%d" % index)
    assert len(mmr.peaks) == bin(37).count("1")


def test_proof_rejects_wrong_leaf():
    mmr = MerkleMountainRange()
    for index in range(20):
        mmr.append(b"leaf-%d" % index)
    assert not verify_mmr(mmr.root, b"evil", mmr.prove(5))


def test_proof_invalidated_by_append():
    mmr = MerkleMountainRange()
    for index in range(10):
        mmr.append(b"leaf-%d" % index)
    proof = mmr.prove(3)
    old_root = mmr.root
    mmr.append(b"leaf-10")
    assert not verify_mmr(mmr.root, b"leaf-3", proof)
    assert verify_mmr(old_root, b"leaf-3", proof)


def test_prove_out_of_range():
    mmr = MerkleMountainRange()
    mmr.append(b"only")
    with pytest.raises(ProofError):
        mmr.prove(1)


def test_proof_size_logarithmic():
    mmr = MerkleMountainRange()
    for index in range(1024):
        mmr.append(b"leaf-%d" % index)
    proof = mmr.prove(500)
    # path <= 10 siblings + <= ~10 peaks
    assert proof.size_bytes() < 32 * 25
