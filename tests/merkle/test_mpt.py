"""Merkle Patricia Trie: inserts, proofs, proof-based updates."""

import pytest

from repro.crypto.hashing import sha256
from repro.errors import ProofError
from repro.merkle.mpt import (
    EMPTY_DIGEST,
    MerklePatriciaTrie,
    apply_update,
    claimed_value,
    verify_mpt,
)


def k(label: str, width: int = 8) -> bytes:
    return sha256(label.encode())[:width]


@pytest.fixture()
def trie():
    trie = MerklePatriciaTrie()
    for index in range(60):
        trie.insert(k(f"key{index}"), b"value%d" % index)
    return trie


def test_empty_trie_root():
    assert MerklePatriciaTrie().root == EMPTY_DIGEST


def test_get_after_insert(trie):
    assert trie.get(k("key3")) == b"value3"
    assert trie.get(k("nope")) is None
    assert len(trie) == 60


def test_overwrite_changes_root(trie):
    before = trie.root
    trie.insert(k("key3"), b"other")
    assert trie.get(k("key3")) == b"other"
    assert trie.root != before
    assert len(trie) == 60  # overwrite, not insert


def test_membership_proofs(trie):
    for index in range(0, 60, 7):
        key = k(f"key{index}")
        proof = trie.prove(key)
        assert verify_mpt(trie.root, key, b"value%d" % index, proof)
        assert not verify_mpt(trie.root, key, b"forged", proof)
        assert not verify_mpt(trie.root, key, None, proof)


def test_non_membership_proofs(trie):
    for index in range(20):
        key = k(f"absent{index}")
        proof = trie.prove(key)
        assert verify_mpt(trie.root, key, None, proof)
        assert not verify_mpt(trie.root, key, b"anything", proof)


def test_proof_bound_to_key(trie):
    proof = trie.prove(k("key1"))
    assert not verify_mpt(trie.root, k("key2"), b"value1", proof)


def test_variable_length_keys():
    trie = MerklePatriciaTrie()
    trie.insert(b"\x12", b"short")
    trie.insert(b"\x12\x34", b"longer")
    trie.insert(b"\x12\x34\x56", b"longest")
    assert trie.get(b"\x12\x34") == b"longer"
    for key, value in ((b"\x12", b"short"), (b"\x12\x34", b"longer")):
        assert verify_mpt(trie.root, key, value, trie.prove(key))
    # A key that is a strict prefix of stored keys but absent itself.
    assert verify_mpt(trie.root, b"\x12\x34\x56\x78", None, trie.prove(b"\x12\x34\x56\x78"))


def test_single_leaf_and_divergence():
    trie = MerklePatriciaTrie()
    trie.insert(b"\xaa\xbb", b"v")
    proof = trie.prove(b"\xaa\xcc")
    assert verify_mpt(trie.root, b"\xaa\xcc", None, proof)


def test_empty_trie_non_membership():
    trie = MerklePatriciaTrie()
    proof = trie.prove(b"\x01\x02")
    assert verify_mpt(trie.root, b"\x01\x02", None, proof)


def test_apply_update_matches_insert(trie):
    key = k("brand-new")
    proof = trie.prove(key)
    predicted = apply_update(trie.root, key, b"fresh", proof)
    trie.insert(key, b"fresh")
    assert predicted == trie.root


def test_apply_update_overwrite(trie):
    key = k("key5")
    proof = trie.prove(key)
    predicted = apply_update(trie.root, key, b"overwritten", proof)
    trie.insert(key, b"overwritten")
    assert predicted == trie.root


def test_apply_update_on_empty_trie():
    trie = MerklePatriciaTrie()
    proof = trie.prove(b"\x42\x42")
    predicted = apply_update(trie.root, b"\x42\x42", b"first", proof)
    trie.insert(b"\x42\x42", b"first")
    assert predicted == trie.root


def test_apply_update_rejects_bad_proof(trie):
    key = k("key5")
    proof = trie.prove(key)
    with pytest.raises(ProofError):
        apply_update(EMPTY_DIGEST, key, b"x", proof)


def test_claimed_value(trie):
    assert claimed_value(k("key5"), trie.prove(k("key5"))) == b"value5"
    assert claimed_value(k("absent"), trie.prove(k("absent"))) is None


def test_proof_size_positive(trie):
    assert trie.prove(k("key5")).size_bytes() > 32
