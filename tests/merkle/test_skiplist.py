"""Authenticated deterministic skip list (LineageChain baseline)."""

import pytest

from repro.errors import ProofError
from repro.merkle.skiplist import (
    EMPTY_ROOT,
    AuthenticatedSkipList,
    pointer_levels,
    verify_window,
)


@pytest.fixture()
def versions():
    asl = AuthenticatedSkipList()
    for index in range(200):
        asl.append(index * 5, b"v%d" % index)
    return asl


def test_pointer_levels_structure():
    assert pointer_levels(0) == []
    assert pointer_levels(1) == [0]
    assert pointer_levels(2) == [0, 1]
    assert pointer_levels(8) == [0, 1, 2, 3]
    assert pointer_levels(12) == [0, 1, 2]


def test_empty_root():
    assert AuthenticatedSkipList().root == EMPTY_ROOT


def test_append_changes_root(versions):
    before = versions.root
    versions.append(9999, b"new")
    assert versions.root != before


def test_keys_must_increase(versions):
    with pytest.raises(ProofError):
        versions.append(3, b"stale")


def test_window_query_roundtrip(versions):
    results, proof = versions.window_query(100, 200)
    assert results == [(key, b"v%d" % (key // 5)) for key in range(100, 201, 5)]
    assert verify_window(versions.root, results, proof)


def test_window_rejects_dropped_version(versions):
    results, proof = versions.window_query(100, 200)
    assert not verify_window(versions.root, results[:-1], proof)
    assert not verify_window(versions.root, results[1:], proof)


def test_window_rejects_altered_value(versions):
    results, proof = versions.window_query(100, 200)
    altered = [(results[0][0], b"tampered")] + results[1:]
    assert not verify_window(versions.root, altered, proof)


def test_window_rejects_wrong_root(versions):
    results, proof = versions.window_query(100, 200)
    other = AuthenticatedSkipList()
    other.append(1, b"x")
    assert not verify_window(other.root, results, proof)


def test_empty_window(versions):
    results, proof = versions.window_query(101, 104)  # between keys
    assert results == []
    assert verify_window(versions.root, [], proof)


def test_window_at_head(versions):
    results, proof = versions.window_query(990, 995)
    assert results == [(990, b"v198"), (995, b"v199")]
    assert verify_window(versions.root, results, proof)


def test_window_at_genesis(versions):
    results, proof = versions.window_query(0, 5)
    assert results == [(0, b"v0"), (5, b"v1")]
    assert verify_window(versions.root, results, proof)


def test_empty_list_window():
    asl = AuthenticatedSkipList()
    results, proof = asl.window_query(0, 10)
    assert results == []
    assert verify_window(asl.root, [], proof)


def test_proof_grows_with_distance(versions):
    near = versions.window_query(950, 995)[1].size_bytes()
    far = versions.window_query(0, 45)[1].size_bytes()
    assert far > near


def test_inverted_window_raises(versions):
    with pytest.raises(ProofError):
        versions.window_query(10, 5)


def test_old_roots_remain_valid_for_their_prefix():
    """Appends never rewrite history: a proof against an old root of the
    same list prefix still verifies."""
    asl = AuthenticatedSkipList()
    for index in range(50):
        asl.append(index, b"v%d" % index)
    results, proof = asl.window_query(10, 20)
    root_50 = asl.root
    for index in range(50, 80):
        asl.append(index, b"v%d" % index)
    # The old proof no longer matches the new root...
    assert not verify_window(asl.root, results, proof)
    # ...but still matches the root it was issued under.
    assert verify_window(root_50, results, proof)
