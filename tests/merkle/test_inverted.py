"""Merkle inverted index: conjunctive keyword queries with completeness."""

import pytest

from repro.errors import QueryError
from repro.merkle.inverted import MerkleInvertedIndex, verify_conjunctive


@pytest.fixture()
def index():
    index = MerkleInvertedIndex()
    corpus = {
        1: ["stock", "bank"],
        2: ["stock"],
        3: ["bank", "stock", "gold"],
        4: ["gold"],
        5: ["stock", "gold"],
        6: ["bank"],
    }
    for tx_id, keywords in corpus.items():
        index.add_document(tx_id, keywords)
    return index


def test_single_keyword(index):
    results, proof = index.query_conjunctive(["gold"])
    assert results == [3, 4, 5]
    assert verify_conjunctive(index.root, results, proof)


def test_two_keyword_conjunction(index):
    results, proof = index.query_conjunctive(["stock", "bank"])
    assert results == [1, 3]
    assert verify_conjunctive(index.root, results, proof)


def test_three_keyword_conjunction(index):
    results, proof = index.query_conjunctive(["stock", "bank", "gold"])
    assert results == [3]
    assert verify_conjunctive(index.root, results, proof)


def test_absent_keyword_gives_empty_result(index):
    results, proof = index.query_conjunctive(["stock", "nonexistent"])
    assert results == []
    assert verify_conjunctive(index.root, [], proof)


def test_verify_rejects_dropped_result(index):
    results, proof = index.query_conjunctive(["stock", "bank"])
    assert not verify_conjunctive(index.root, results[:-1], proof)


def test_verify_rejects_injected_result(index):
    results, proof = index.query_conjunctive(["stock", "bank"])
    assert not verify_conjunctive(index.root, results + [4], proof)


def test_verify_rejects_wrong_root(index):
    results, proof = index.query_conjunctive(["stock", "bank"])
    other = MerkleInvertedIndex()
    other.add_document(1, ["stock", "bank"])
    assert not verify_conjunctive(other.root, results, proof)


def test_duplicate_keywords_in_document(index):
    index.add_document(7, ["stock", "stock", "bank"])
    results, proof = index.query_conjunctive(["stock", "bank"])
    assert 7 in results
    assert verify_conjunctive(index.root, results, proof)


def test_empty_query_rejected(index):
    with pytest.raises(QueryError):
        index.query_conjunctive([])


def test_keywords_listing(index):
    assert index.keywords() == ["bank", "gold", "stock"]


def test_root_changes_with_updates(index):
    before = index.root
    index.add_document(99, ["new-term"])
    assert index.root != before
