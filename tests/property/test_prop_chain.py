"""Property-based tests for chain-level invariants."""

from hypothesis import given, settings, strategies as st

from repro.chain.builder import ChainBuilder
from repro.chain.genesis import make_genesis
from repro.chain.node import FullNode
from repro.chain.transaction import sign_transaction
from repro.crypto import generate_keypair
from tests.conftest import fresh_vm

_KEYPAIR = generate_keypair(b"prop-chain")

# One workload step: (key slot, value token).
steps = st.lists(
    st.tuples(st.integers(min_value=0, max_value=3), st.integers(min_value=0, max_value=99)),
    min_size=1,
    max_size=6,
)


@settings(max_examples=10, deadline=None)
@given(blocks=st.lists(steps, min_size=1, max_size=4))
def test_any_mined_chain_replays_identically(blocks):
    """Whatever the miner builds, an independent full node re-derives
    the exact same state commitment."""
    builder = ChainBuilder(difficulty_bits=2)
    nonce = 0
    for block_steps in blocks:
        txs = []
        for slot, token in block_steps:
            txs.append(
                sign_transaction(
                    _KEYPAIR.private, nonce, "kvstore", "put",
                    (f"k{slot}", f"v{token}"),
                )
            )
            nonce += 1
        builder.add_block(txs)
    genesis, state = make_genesis()
    node = FullNode(genesis, state, fresh_vm(), builder.pow)
    for block in builder.blocks[1:]:
        node.append_block(block)
    assert node.state.root == builder.state.root
    assert node.height == builder.height


@settings(max_examples=10, deadline=None)
@given(block_steps=steps)
def test_write_sets_equal_replayed_write_sets(block_steps):
    """The miner's recorded write set equals a strict re-execution's."""
    from repro.chain.executor import TransactionExecutor
    from repro.chain.state import StateStore

    txs = []
    for nonce, (slot, token) in enumerate(block_steps):
        txs.append(
            sign_transaction(
                _KEYPAIR.private, nonce, "kvstore", "put",
                (f"k{slot}", f"v{token}"),
            )
        )
    vm = fresh_vm()
    miner_exec = TransactionExecutor(vm)
    miner_result = miner_exec.execute(StateStore(), list(txs), strict=False)
    strict_result = miner_exec.execute(StateStore(), list(txs), strict=True)
    assert miner_result.write_set == strict_result.write_set
    assert miner_result.read_set == strict_result.read_set
