"""Property-based robustness of certificate handling.

Random byte-level corruption of a certificate must never be accepted:
either decoding fails, or validation raises.  This is the fuzzing
counterpart of the targeted forgeries in ``tests/core/test_security.py``.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.certificate import Certificate
from repro.core.superlight import SuperlightClient
from repro.errors import CertificateError, CryptoError


@pytest.fixture(scope="module")
def accepted(certified_setup):
    tip = certified_setup["issuer"].certified[-1]
    client = SuperlightClient(
        certified_setup["issuer"].measurement,
        certified_setup["ias"].public_key,
    )
    assert client.validate_chain(tip.block.header, tip.certificate)
    return {"tip": tip, "client": client, "wire": tip.certificate.encode()}


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_any_single_byte_corruption_is_rejected(accepted, data):
    wire = bytearray(accepted["wire"])
    position = data.draw(st.integers(min_value=0, max_value=len(wire) - 1))
    flip = data.draw(st.integers(min_value=1, max_value=255))
    wire[position] ^= flip
    tip = accepted["tip"]
    try:
        corrupted = Certificate.decode(bytes(wire))
    except (CertificateError, CryptoError):
        return  # malformed encodings must fail to parse — fine
    if corrupted == tip.certificate:
        return  # the flip only touched JSON syntax/whitespace semantics
    fresh = SuperlightClient(
        accepted["client"].expected_measurement,
        accepted["client"].ias_public_key,
    )
    with pytest.raises(CertificateError):
        fresh.validate_chain(tip.block.header, corrupted)


@settings(max_examples=30, deadline=None)
@given(drop=st.integers(min_value=0, max_value=3))
def test_truncated_certificates_rejected(accepted, drop):
    wire = accepted["wire"]
    truncated = wire[: len(wire) // (drop + 2)]
    with pytest.raises((CertificateError, CryptoError)):
        Certificate.decode(truncated)
