"""Property: every index spec's enclave replay tracks the SP exactly.

For random SmallBank/KVStore workloads, each certified index family
must satisfy the invariant the enclave relies on:

    apply_writes(prev_root, writes, proof) == maintained_index.root

after every block, where (writes, proof) come from the SP-side ingest.
This is the property that makes Alg. 4 line 10 / Alg. 5 line 13 sound.
"""

from hypothesis import given, settings, strategies as st

from repro.chain.builder import ChainBuilder
from repro.chain.transaction import sign_transaction
from repro.core.issuer import make_maintained_index
from repro.crypto import generate_keypair
from repro.query.indexes import (
    AccountHistoryIndexSpec,
    BalanceAggregateIndexSpec,
    KeywordIndexSpec,
    ValueRangeIndexSpec,
)

_KEYPAIR = generate_keypair(b"prop-specs")

# One step: (op, account-slot, amount-token).
steps = st.lists(
    st.tuples(
        st.sampled_from(["deposit", "pay", "kv"]),
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=1, max_value=9),
    ),
    min_size=1,
    max_size=5,
)


def build_chain(block_steps):
    builder = ChainBuilder(difficulty_bits=2)
    nonce = [0]

    def tx(contract, method, args):
        built = sign_transaction(_KEYPAIR.private, nonce[0], contract, method, args)
        nonce[0] += 1
        return built

    setup = [
        tx("smallbank", "create", (f"s{slot}", "100", "0")) for slot in range(3)
    ]
    builder.add_block(setup)
    for block in block_steps:
        txs = []
        for op, slot, amount in block:
            if op == "deposit":
                txs.append(
                    tx("smallbank", "deposit_checking", (f"s{slot}", str(amount)))
                )
            elif op == "pay":
                txs.append(
                    tx(
                        "smallbank",
                        "send_payment",
                        (f"s{slot}", f"s{(slot + 1) % 3}", str(amount)),
                    )
                )
            else:
                txs.append(tx("kvstore", "put", (f"k{slot}", f"value {amount}")))
        builder.add_block(txs)
    return builder


@settings(max_examples=8, deadline=None)
@given(block_steps=st.lists(steps, min_size=1, max_size=3))
def test_all_specs_replay_exactly(block_steps):
    builder = build_chain(block_steps)
    specs = [
        AccountHistoryIndexSpec(name="history"),
        KeywordIndexSpec(name="keyword"),
        BalanceAggregateIndexSpec(name="aggregate"),
        ValueRangeIndexSpec(name="range"),
    ]
    for spec in specs:
        index = make_maintained_index(spec)
        root = spec.genesis_root()
        for block, result in zip(builder.blocks[1:], builder.results[1:]):
            writes, proof = index.ingest_block(block, result.write_set)
            root = spec.apply_writes(root, writes, proof)
            assert root == index.root, (spec.name, block.header.height)
