"""Fuzzing the wire decoders: garbage in, library exceptions out.

Every ``decode`` in the library must fail *cleanly* on arbitrary bytes
— raising the documented :class:`ReproError` subclass, never leaking a
bare ``KeyError``/``TypeError``/``json`` exception to callers.  This is
what lets network-facing code treat decoding failures uniformly.
"""

from hypothesis import given, settings, strategies as st

from repro.chain.block import BlockHeader, decode_block
from repro.chain.transaction import Transaction
from repro.core.certificate import Certificate
from repro.errors import ReproError

garbage = st.binary(min_size=0, max_size=200)
jsonish = st.text(alphabet='{}[]":,abc0123456789', max_size=80).map(
    lambda text: text.encode("utf-8")
)


@settings(max_examples=150, deadline=None)
@given(data=st.one_of(garbage, jsonish))
def test_header_decode_never_leaks(data):
    try:
        BlockHeader.decode(data)
    except ReproError:
        pass


@settings(max_examples=150, deadline=None)
@given(data=st.one_of(garbage, jsonish))
def test_transaction_decode_never_leaks(data):
    try:
        Transaction.decode(data)
    except ReproError:
        pass


@settings(max_examples=150, deadline=None)
@given(data=st.one_of(garbage, jsonish))
def test_block_decode_never_leaks(data):
    try:
        decode_block(data)
    except ReproError:
        pass


@settings(max_examples=150, deadline=None)
@given(data=st.one_of(garbage, jsonish))
def test_certificate_decode_never_leaks(data):
    try:
        Certificate.decode(data)
    except ReproError:
        pass


def test_valid_roundtrips_still_work(kv_chain, certified_setup):
    """The fuzz property must not be satisfied by rejecting everything."""
    header = kv_chain.headers()[1]
    assert BlockHeader.decode(header.encode()) == header
    cert = certified_setup["issuer"].certified[-1].certificate
    assert Certificate.decode(cert.encode()) == cert
