"""Property-based tests for the crypto substrate."""

from hypothesis import given, settings, strategies as st

from repro.crypto import ecdsa, generate_keypair, sign, verify
from repro.crypto.hashing import hash_concat, sha256
from repro.crypto.keys import PublicKey

# Signing is ~2 ms in pure Python; keep example counts modest.
_SLOW = settings(max_examples=20, deadline=None)

scalars = st.integers(min_value=1, max_value=ecdsa.N - 1)
messages = st.binary(min_size=0, max_size=128)


@_SLOW
@given(scalar=scalars)
def test_public_key_roundtrip_for_any_scalar(scalar):
    point = ecdsa.derive_public_point(scalar)
    public = PublicKey(point[0], point[1])
    assert PublicKey.from_bytes(public.to_bytes()) == public


@_SLOW
@given(scalar=scalars, message=messages)
def test_sign_verify_roundtrip_any_key_any_message(scalar, message):
    keypair = generate_keypair(scalar.to_bytes(32, "big"))
    signature = sign(keypair.private, message)
    assert verify(keypair.public, message, signature)


@_SLOW
@given(message=messages, flip=st.integers(min_value=0, max_value=7))
def test_any_bit_flip_breaks_verification(message, flip):
    keypair = generate_keypair(b"prop-flip")
    signature = sign(keypair.private, message)
    tampered = bytearray(message + b"\x00")  # ensure non-empty
    tampered[0] ^= 1 << flip
    assert not verify(keypair.public, bytes(tampered), signature)


@given(
    parts_a=st.lists(st.binary(max_size=16), max_size=5),
    parts_b=st.lists(st.binary(max_size=16), max_size=5),
)
@settings(max_examples=200, deadline=None)
def test_hash_concat_injective_on_part_lists(parts_a, parts_b):
    if parts_a != parts_b:
        assert hash_concat(*parts_a) != hash_concat(*parts_b)
    else:
        assert hash_concat(*parts_a) == hash_concat(*parts_b)


@given(data=st.binary(max_size=64))
@settings(max_examples=200, deadline=None)
def test_sha256_stable(data):
    assert sha256(data) == sha256(data)
    assert len(sha256(data)) == 32
