"""Property-based tests for the authenticated structures.

These pin the invariants DCert's security rests on: every structure's
proofs verify for what is committed and for nothing else, and the
proof-based update functions track the real structures exactly.
"""

from hypothesis import given, settings, strategies as st

from repro.crypto.hashing import sha256
from repro.merkle.mbtree import MerkleBTree, apply_insert, verify_range
from repro.merkle.mht import MerkleTree, verify_membership
from repro.merkle.mmr import MerkleMountainRange, verify_mmr
from repro.merkle.mpt import MerklePatriciaTrie, apply_update, verify_mpt
from repro.merkle.partial import PartialSMT
from repro.merkle.skiplist import AuthenticatedSkipList, verify_window
from repro.merkle.smt import SparseMerkleTree, verify_proof

_FAST = settings(max_examples=50, deadline=None)
_SLOWER = settings(max_examples=25, deadline=None)


@_FAST
@given(leaves=st.lists(st.binary(max_size=16), min_size=1, max_size=40))
def test_mht_every_leaf_proves(leaves):
    tree = MerkleTree(leaves)
    for index, leaf in enumerate(leaves):
        assert verify_membership(tree.root, leaf, tree.prove(index))


@_FAST
@given(
    items=st.dictionaries(
        st.text(min_size=1, max_size=8), st.binary(min_size=1, max_size=16),
        min_size=1, max_size=30,
    ),
    probe=st.text(min_size=1, max_size=8),
)
def test_smt_membership_and_absence(items, probe):
    tree = SparseMerkleTree(depth=64)
    hashed = {sha256(label.encode()): value for label, value in items.items()}
    tree.update_batch(dict(hashed))
    for key, value in hashed.items():
        assert verify_proof(tree.root, key, value, tree.prove(key))
    probe_key = sha256(b"probe:" + probe.encode())
    expected = hashed.get(probe_key)
    assert verify_proof(tree.root, probe_key, expected, tree.prove(probe_key))


@_SLOWER
@given(
    items=st.dictionaries(
        st.text(min_size=1, max_size=6), st.binary(min_size=1, max_size=8),
        min_size=2, max_size=20,
    ),
    writes=st.dictionaries(
        st.text(min_size=1, max_size=6),
        st.one_of(st.none(), st.binary(min_size=1, max_size=8)),
        min_size=1, max_size=10,
    ),
)
def test_partial_smt_tracks_full_tree_under_any_writes(items, writes):
    tree = SparseMerkleTree(depth=64)
    for label, value in items.items():
        tree.update(sha256(label.encode()), value)
    touched = sorted({*items, *writes})
    entries = [
        (sha256(label.encode()), tree.get(sha256(label.encode())),
         tree.prove(sha256(label.encode())))
        for label in touched
    ]
    partial = PartialSMT.from_proofs(tree.root, entries)
    for label, value in writes.items():
        partial.update(sha256(label.encode()), value)
        tree.update(sha256(label.encode()), value)
    assert partial.root == tree.root


@_FAST
@given(
    items=st.dictionaries(
        st.binary(min_size=1, max_size=6), st.binary(min_size=1, max_size=8),
        min_size=1, max_size=30,
    ),
    probe=st.binary(min_size=1, max_size=6),
)
def test_mpt_membership_and_absence(items, probe):
    trie = MerklePatriciaTrie()
    for key, value in items.items():
        trie.insert(key, value)
    for key, value in items.items():
        assert verify_mpt(trie.root, key, value, trie.prove(key))
    assert verify_mpt(trie.root, probe, items.get(probe), trie.prove(probe))


@_SLOWER
@given(
    initial=st.dictionaries(
        st.binary(min_size=1, max_size=6), st.binary(min_size=1, max_size=8),
        max_size=20,
    ),
    updates=st.lists(
        st.tuples(st.binary(min_size=1, max_size=6), st.binary(min_size=1, max_size=8)),
        min_size=1, max_size=10,
    ),
)
def test_mpt_apply_update_tracks_inserts(initial, updates):
    trie = MerklePatriciaTrie()
    for key, value in initial.items():
        trie.insert(key, value)
    for key, value in updates:
        predicted = apply_update(trie.root, key, value, trie.prove(key))
        trie.insert(key, value)
        assert predicted == trie.root


@_SLOWER
@given(
    keys=st.lists(st.integers(min_value=0, max_value=10_000), min_size=1,
                  max_size=60, unique=True),
    window=st.tuples(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=10_000),
    ),
    fanout=st.sampled_from([4, 8, 16]),
)
def test_mbtree_range_queries_complete(keys, window, fanout):
    lo, hi = min(window), max(window)
    tree = MerkleBTree(fanout=fanout)
    for key in keys:
        tree.insert(key, b"v%d" % key)
    results, proof = tree.range_query(lo, hi)
    assert verify_range(tree.root, results, proof)
    assert results == sorted(
        (key, b"v%d" % key) for key in keys if lo <= key <= hi
    )


@_SLOWER
@given(
    keys=st.lists(st.integers(min_value=0, max_value=100_000), min_size=1,
                  max_size=80, unique=True),
    fanout=st.sampled_from([4, 8]),
)
def test_mbtree_apply_insert_tracks_tree(keys, fanout):
    tree = MerkleBTree(fanout=fanout)
    for key in keys:
        proof = tree.prove_insert(key)
        predicted = apply_insert(tree.root, key, b"v%d" % key, proof)
        tree.insert(key, b"v%d" % key)
        assert predicted == tree.root


@_SLOWER
@given(
    count=st.integers(min_value=1, max_value=80),
    window=st.tuples(
        st.integers(min_value=0, max_value=400),
        st.integers(min_value=0, max_value=400),
    ),
)
def test_skiplist_window_queries_complete(count, window):
    lo, hi = min(window), max(window)
    asl = AuthenticatedSkipList()
    keys = [index * 5 for index in range(count)]
    for key in keys:
        asl.append(key, b"v%d" % key)
    results, proof = asl.window_query(lo, hi)
    assert verify_window(asl.root, results, proof)
    assert results == [(key, b"v%d" % key) for key in keys if lo <= key <= hi]


@_FAST
@given(count=st.integers(min_value=1, max_value=60),
       probe=st.integers(min_value=0, max_value=59))
def test_mmr_membership(count, probe):
    mmr = MerkleMountainRange()
    for index in range(count):
        mmr.append(b"leaf-%d" % index)
    index = probe % count
    assert verify_mmr(mmr.root, b"leaf-%d" % index, mmr.prove(index))
