"""Property: fork-aware nodes converge regardless of delivery order.

Build a random block *tree* (every block valid), deliver its blocks to
a :class:`ForkAwareNode` in random topological orders, and require that
every node ends on the same best tip with the same state commitment —
the eventual-consistency property the certificate network relies on.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.chain.builder import ChainBuilder
from repro.chain.forktree import ForkAwareNode
from repro.chain.genesis import make_genesis
from repro.chain.transaction import sign_transaction
from repro.crypto import generate_keypair
from tests.conftest import fresh_vm

_KEYPAIR = generate_keypair(b"prop-forks")


def _clone_prefix(source: ChainBuilder, upto: int) -> ChainBuilder:
    clone = ChainBuilder(difficulty_bits=2, network="prop-forks")
    for block in source.blocks[1 : upto + 1]:
        clone.blocks.append(block)
        result = clone.miner.executor.execute(
            clone.state, list(block.transactions), strict=True
        )
        clone.state.apply_writes(result.write_set)
        clone.results.append(result)
    return clone


def build_block_tree(branch_plan):
    """branch_plan: list of (fork_height_fraction, extra_blocks)."""
    nonce = [0]

    def kv(tag):
        tx = sign_transaction(
            _KEYPAIR.private, nonce[0], "kvstore", "put", (f"k{tag}", f"v{nonce[0]}")
        )
        nonce[0] += 1
        return tx

    trunk = ChainBuilder(difficulty_bits=2, network="prop-forks")
    for height in range(1, 5):
        trunk.add_block([kv(f"trunk{height}")])
    all_blocks = list(trunk.blocks[1:])
    builders = [trunk]
    for index, (fraction, extra) in enumerate(branch_plan):
        fork_at = 1 + int(fraction * 3)  # fork from trunk height 1..4
        branch = _clone_prefix(trunk, fork_at)
        for height in range(extra):
            branch.add_block([kv(f"b{index}h{height}")])
            all_blocks.append(branch.blocks[-1])
        builders.append(branch)
    # ForkAwareNode only reorgs on *strictly* greater height (first-seen
    # wins ties), so order independence needs a unique tallest branch:
    # keep extending the current best until it stands alone.
    best = max(builders, key=lambda b: (b.height, b.tip.block_hash()))
    while sum(1 for b in builders if b.height == best.height) > 1:
        best.add_block([kv("tiebreak")])
        all_blocks.append(best.blocks[-1])
    return all_blocks, best


@settings(max_examples=6, deadline=None)
@given(
    branch_plan=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=1.0),
            st.integers(min_value=1, max_value=4),
        ),
        min_size=1,
        max_size=3,
    ),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_delivery_order_does_not_matter(branch_plan, seed):
    all_blocks, best = build_block_tree(branch_plan)

    def topological_shuffle(blocks, rng):
        """Random order that never delivers a child before its parent."""
        remaining = list(blocks)
        known = {blocks[0].header.prev_hash}
        ordered = []
        while remaining:
            ready = [
                block for block in remaining if block.header.prev_hash in known
            ]
            chosen = rng.choice(ready)
            ordered.append(chosen)
            known.add(chosen.header.header_hash())
            remaining.remove(chosen)
        return ordered

    rng = random.Random(seed)
    tips = set()
    roots = set()
    for _ in range(2):
        genesis, state = make_genesis(network="prop-forks")
        node = ForkAwareNode(
            genesis, state, fresh_vm(), ChainBuilder(difficulty_bits=2).pow
        )
        for block in topological_shuffle(all_blocks, rng):
            node.add_block(block)
        tips.add(node.tip.block_hash())
        roots.add(node.state.root)
    assert len(tips) == 1
    assert len(roots) == 1
    (tip_hash,) = tips
    final_height = max(block.header.height for block in all_blocks)
    delivered_heights = {
        block.header.height: block for block in all_blocks
    }
    assert delivered_heights[final_height] is not None
    # The adopted tip is at the maximum height present in the tree.
    adopted = next(
        block for block in all_blocks if block.block_hash() == tip_hash
    )
    assert adopted.header.height == final_height
