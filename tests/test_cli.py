"""The CLI: info, selftest, demos (incl. demo-overload), sim, metrics."""

import json

import pytest

from repro.cli import main


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "repro.core" in out and "DCert" in out


def test_selftest(capsys):
    assert main(["selftest"]) == 0
    assert "selftest ok" in capsys.readouterr().out


def test_demo(capsys):
    assert main(["demo", "--blocks", "3"]) == 0
    out = capsys.readouterr().out
    assert "Superlight client validated" in out
    assert "verified=True" in out


def test_demo_network(capsys):
    assert main(["demo-network", "--blocks", "3"]) == 0
    out = capsys.readouterr().out
    assert "adopted certified tip at height 2" in out
    assert "Verified query over RPC" in out
    # The finale: the last block arrives over the push stream, not RPC.
    assert "pushed tip at height 3 adopted with 0 client RPC" in out


def test_demo_crash(capsys):
    assert main(["demo-crash", "--blocks", "6"]) == 0
    out = capsys.readouterr().out
    assert "crash fired: True" in out
    assert "supervisor restarts: 1" in out
    assert "pk_enc stable across restart (sealed key): True" in out
    assert "(no re-attestation)" in out


def test_demo_overload(capsys):
    assert main(["demo-overload"]) == 0
    out = capsys.readouterr().out
    # [1] deadline propagation refuses doomed work at the replica.
    assert "provider executions: 0 (doomed work costs zero)" in out
    assert "deadline refusals: 1" in out
    # [3] admission control sheds and the client degrades gracefully.
    assert "shed" in out and "OVERLOADED" in out
    assert "served the last verified answer flagged stale=True" in out
    # [4] the gateway hedges around the slow replica.
    assert "won by the fast replica" in out
    assert "Totals" in out


def test_demo_crash_rejects_unknown_point(capsys):
    assert main(["demo-crash", "--point", "not.a.point"]) == 2
    assert "unknown crashpoint" in capsys.readouterr().err


def test_metrics_text(capsys):
    assert main(["metrics", "--blocks", "3"]) == 0
    out = capsys.readouterr().out
    assert "== Counters ==" in out
    assert "sgx.ecalls" in out
    assert "rpc.client.calls" in out
    assert "== Histograms ==" in out
    assert "query.proof_bytes" in out


def test_metrics_json(capsys):
    assert main(["metrics", "--blocks", "3", "--json"]) == 0
    snapshot = json.loads(capsys.readouterr().out)
    assert snapshot["counters"]["sgx.ecalls"] > 0
    # The newest mined block is held back for the push demo (--all),
    # so a 3-block world certifies 2 here.
    assert snapshot["counters"]["issuer.certs_issued"] == 2
    assert snapshot["histograms"]["query.proof_bytes"]["count"] >= 1
    assert any(
        name.startswith("rpc.client.call_ms.")
        for name in snapshot["histograms"]
    )
    # Spans carry both clocks; RPC spans see virtual time advance.
    assert snapshot["spans"], "expected completed trace spans"
    assert all("wall_ms" in span for span in snapshot["spans"])


def test_metrics_leaves_observability_disabled():
    from repro import obs

    assert main(["metrics", "--blocks", "3", "--json"]) == 0
    assert not obs.enabled()
    assert obs.registry().virtual_clock is None


def test_sim_clean_run(capsys):
    assert main(["sim", "--events", "25", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "event-log fingerprint:" in out
    assert "all invariants held" in out


def test_sim_overload_profile_runs_and_is_reproducible(capsys):
    assert main(["sim", "--events", "30", "--seed", "3",
                 "--profile", "overload"]) == 0
    first = capsys.readouterr().out
    assert "profile overload" in first
    assert "all invariants held" in first
    assert main(["sim", "--events", "30", "--seed", "3",
                 "--profile", "overload"]) == 0
    second = capsys.readouterr().out
    # Same seed, same profile: byte-identical fingerprints.
    fingerprint = [
        line for line in first.splitlines() if "fingerprint" in line
    ]
    assert fingerprint and fingerprint == [
        line for line in second.splitlines() if "fingerprint" in line
    ]


def test_sim_canary_violation_prints_replay(capsys):
    # seed 4 trips the height-cap canary within 24 events
    assert main(["sim", "--events", "24", "--seed", "4",
                 "--canary", "height-cap"]) == 1
    out = capsys.readouterr().out
    assert "INVARIANT VIOLATION" in out
    assert "REPRO_SIM_REPLAY=4:" in out


def test_sim_rejects_unknown_canary(capsys):
    assert main(["sim", "--canary", "not.a.canary"]) == 2
    assert "unknown canary" in capsys.readouterr().out


def test_sim_verbose_prints_event_log(capsys):
    assert main(["sim", "--events", "10", "--verbose"]) == 0
    out = capsys.readouterr().out
    assert "0000 t=" in out


def test_demo_sim(capsys):
    assert main(["demo-sim", "--events", "20"]) == 0
    out = capsys.readouterr().out
    assert "byte-identical: True" in out
    assert "event-log fingerprint:" in out


def test_sim_leaves_observability_disabled():
    from repro import obs

    assert main(["sim", "--events", "8"]) == 0
    assert not obs.enabled()
    assert obs.registry().virtual_clock is None


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_analyze_subcommand_delegates_to_the_linter(tmp_path, capsys):
    target = tmp_path / "src" / "repro" / "net" / "example.py"
    target.parent.mkdir(parents=True)
    target.write_text("import time\n\nx = time.time()\n", encoding="utf-8")
    assert main(["analyze", "--root", str(tmp_path), "src"]) == 1
    out = capsys.readouterr().out
    assert "DET01" in out and "1 new" in out

    assert main(["analyze", "--root", str(tmp_path), "--json", "src"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["new"][0]["rule"] == "DET01"
