"""The CLI: info, selftest, demo."""

import pytest

from repro.cli import main


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "repro.core" in out and "DCert" in out


def test_selftest(capsys):
    assert main(["selftest"]) == 0
    assert "selftest ok" in capsys.readouterr().out


def test_demo(capsys):
    assert main(["demo", "--blocks", "3"]) == 0
    out = capsys.readouterr().out
    assert "Superlight client validated" in out
    assert "verified=True" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
