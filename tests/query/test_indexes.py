"""Index specs: write-data derivation and proof-based root updates."""

import pytest

from repro.chain.builder import ChainBuilder
from repro.chain.transaction import sign_transaction
from repro.crypto import generate_keypair
from repro.errors import ProofError
from repro.query.indexes import (
    AccountHistoryIndexSpec,
    KeywordIndexSpec,
    MaintainedKeywordIndex,
    TwoLevelHistoryIndex,
)


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair(b"index-tests")


@pytest.fixture(scope="module")
def chain(keypair):
    builder = ChainBuilder(difficulty_bits=4)
    nonce = 0
    for height in range(1, 9):
        txs = [
            sign_transaction(
                keypair.private, nonce, "kvstore", "put",
                (f"acct{height % 3}", f"val{height} alpha beta"),
            )
        ]
        nonce += 1
        builder.add_block(txs)
    return builder


def test_history_write_data_derivation(chain):
    spec = AccountHistoryIndexSpec()
    block = chain.blocks[1]
    result = chain.results[1]
    writes = spec.write_data(block, result.write_set)
    assert len(writes) == 1
    assert writes[0].account == "acct1"
    assert writes[0].timestamp == 1
    assert writes[0].value == b"val1 alpha beta"


def test_history_apply_writes_tracks_index(chain):
    spec = AccountHistoryIndexSpec()
    index = TwoLevelHistoryIndex(spec)
    root = spec.genesis_root()
    for block, result in zip(chain.blocks[1:], chain.results[1:]):
        writes, proof = index.ingest_block(block, result.write_set)
        root = spec.apply_writes(root, writes, proof)
        assert root == index.root


def test_history_apply_rejects_wrong_new_root(chain):
    spec = AccountHistoryIndexSpec()
    index = TwoLevelHistoryIndex(spec)
    block, result = chain.blocks[1], chain.results[1]
    writes, proof = index.ingest_block(block, result.write_set)
    # Tampered write value: the recomputed root differs.
    from dataclasses import replace

    bad_writes = (replace(writes[0], value=b"forged"),)
    bad_root = spec.apply_writes(spec.genesis_root(), bad_writes, proof)
    assert bad_root != index.root


def test_history_apply_rejects_short_proof(chain):
    from repro.query.indexes import TwoLevelUpdateProof

    spec = AccountHistoryIndexSpec()
    index = TwoLevelHistoryIndex(spec)
    block, result = chain.blocks[1], chain.results[1]
    writes, proof = index.ingest_block(block, result.write_set)
    with pytest.raises(ProofError):
        spec.apply_writes(spec.genesis_root(), writes, TwoLevelUpdateProof(steps=()))


def test_history_query_windows(chain):
    spec = AccountHistoryIndexSpec()
    index = TwoLevelHistoryIndex(spec)
    for block, result in zip(chain.blocks[1:], chain.results[1:]):
        index.ingest_block(block, result.write_set)
    answer = index.query_history("acct1", 1, 8)
    assert [t for t, _ in answer.versions] == [1, 4, 7]
    missing = index.query_history("ghost", 1, 8)
    assert missing.versions == () and missing.lower_root is None


def test_keyword_write_data_derivation(chain):
    spec = KeywordIndexSpec()
    block = chain.blocks[2]
    writes = spec.write_data(block, chain.results[2].write_set)
    assert len(writes) == 1
    assert writes[0].seq == (2 << 20) | 0
    assert set(writes[0].keywords) == {"acct2", "val2", "alpha", "beta"}


def test_keyword_apply_writes_tracks_index(chain):
    spec = KeywordIndexSpec()
    index = MaintainedKeywordIndex(spec)
    root = spec.genesis_root()
    for block, result in zip(chain.blocks[1:], chain.results[1:]):
        writes, proof = index.ingest_block(block, result.write_set)
        root = spec.apply_writes(root, writes, proof)
        assert root == index.root


def test_keyword_conjunctive_queries(chain):
    spec = KeywordIndexSpec()
    index = MaintainedKeywordIndex(spec)
    for block, result in zip(chain.blocks[1:], chain.results[1:]):
        index.ingest_block(block, result.write_set)
    answer = index.query_conjunctive(["alpha", "beta"])
    assert len(answer.results) == 8  # every doc carries both
    narrow = index.query_conjunctive(["alpha", "val3"])
    assert narrow.results == ((3 << 20),)


def test_keyword_seq_encoding_bounds():
    spec = KeywordIndexSpec()
    assert spec.tx_seq(5, 3) == (5 << 20) | 3
    from repro.errors import QueryError

    with pytest.raises(QueryError):
        spec.tx_seq(1, 1 << 20)


def test_spec_fanout_mismatch_rejected(chain):
    spec16 = AccountHistoryIndexSpec(fanout=16)
    spec8 = AccountHistoryIndexSpec(fanout=8)
    index = TwoLevelHistoryIndex(spec16)
    block, result = chain.blocks[1], chain.results[1]
    writes, proof = index.ingest_block(block, result.write_set)
    with pytest.raises(ProofError):
        spec8.apply_writes(spec8.genesis_root(), writes, proof)
