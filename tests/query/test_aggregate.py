"""Verifiable aggregate queries over SmallBank balances, end to end."""

import pytest
from dataclasses import replace

from repro.chain.builder import ChainBuilder
from repro.chain.genesis import make_genesis
from repro.chain.transaction import sign_transaction
from repro.core.issuer import CertificateIssuer
from repro.core.superlight import SuperlightClient
from repro.crypto import generate_keypair
from repro.merkle.aggtree import Aggregate
from repro.query.api import AggregateQuery, QueryAnswer
from repro.query.indexes import BalanceAggregateIndexSpec
from repro.sgx.attestation import AttestationService
from tests.conftest import fresh_vm


@pytest.fixture(scope="module")
def world():
    keypair = generate_keypair(b"agg-tests")
    builder = ChainBuilder(difficulty_bits=4, network="aggnet")
    nonce = [0]

    def bank_tx(method, args):
        tx = sign_transaction(keypair.private, nonce[0], "smallbank", method, args)
        nonce[0] += 1
        return tx

    builder.add_block([
        bank_tx("create", ("alice", "100", "50")),
        bank_tx("create", ("bob", "10", "0")),
    ])
    # Alice's checking: 100 ->(+10) 110 ->(-25) 85 ->(+5) 90 ...
    deltas = [10, -25, 5, 40, -30, 15]
    for delta in deltas:
        if delta >= 0:
            builder.add_block([bank_tx("deposit_checking", ("alice", str(delta)))])
        else:
            builder.add_block([bank_tx("send_payment", ("alice", "bob", str(-delta)))])

    spec = BalanceAggregateIndexSpec(name="balances")
    genesis, state = make_genesis(network="aggnet")
    ias = AttestationService(seed=b"agg-ias")
    issuer = CertificateIssuer(
        genesis, state, fresh_vm(), builder.pow,
        index_specs=[spec], ias=ias, key_seed=b"agg-enclave",
    )
    for block in builder.blocks[1:]:
        issuer.process_block(block, schemes=("hierarchical", "augmented"))
    client = SuperlightClient(issuer.measurement, ias.public_key)
    tip = issuer.certified[-1]
    client.validate_chain(tip.block.header, tip.certificate)
    client.validate_index_certificate(
        "balances", tip.block.header, tip.index_roots["balances"],
        tip.index_certificates["balances"],
    )
    return {"builder": builder, "issuer": issuer, "client": client}


#: Alice's checking balance after each block 1..7.
ALICE_BALANCES = {1: 100, 2: 110, 3: 85, 4: 90, 5: 130, 6: 100, 7: 115}


def verify_agg(client, name, answer):
    """Check a bare AggregateAnswer through the unified typed API."""
    request = AggregateQuery(
        index=name,
        account=answer.account,
        t_from=answer.t_from,
        t_to=answer.t_to,
    )
    return client.verify_answer(
        request, QueryAnswer(request=request, payload=answer)
    )


def test_certified_roots_track_index(world):
    issuer = world["issuer"]
    assert issuer.index_root("balances") == issuer.indexes["balances"].root


def test_full_window_aggregate(world):
    answer = world["issuer"].indexes["balances"].query_aggregate("alice", 1, 7)
    values = list(ALICE_BALANCES.values())
    assert answer.aggregate == Aggregate(
        count=len(values), total=sum(values),
        minimum=min(values), maximum=max(values),
    )
    assert verify_agg(world["client"], "balances", answer)
    assert answer.average == pytest.approx(sum(values) / len(values))


def test_partial_window_aggregate(world):
    answer = world["issuer"].indexes["balances"].query_aggregate("alice", 3, 5)
    values = [ALICE_BALANCES[h] for h in (3, 4, 5)]
    assert answer.aggregate == Aggregate(
        count=3, total=sum(values), minimum=min(values), maximum=max(values)
    )
    assert verify_agg(world["client"], "balances", answer)


def test_empty_window(world):
    answer = world["issuer"].indexes["balances"].query_aggregate("alice", 100, 200)
    assert answer.aggregate is None
    assert verify_agg(world["client"], "balances", answer)


def test_unknown_account(world):
    answer = world["issuer"].indexes["balances"].query_aggregate("charlie", 1, 7)
    assert answer.aggregate is None and answer.lower_root is None
    assert verify_agg(world["client"], "balances", answer)


def test_forged_total_rejected(world):
    answer = world["issuer"].indexes["balances"].query_aggregate("alice", 1, 7)
    forged = replace(
        answer,
        aggregate=replace(answer.aggregate, total=answer.aggregate.total + 1),
    )
    assert not verify_agg(world["client"], "balances", forged)


def test_window_bounds_checked(world):
    answer = world["issuer"].indexes["balances"].query_aggregate("alice", 3, 5)
    widened = replace(answer, t_from=1, t_to=7)
    assert not verify_agg(world["client"], "balances", widened)


def test_bob_transfers_indexed_too(world):
    """send_payment touches bob's balance; the index must include it."""
    answer = world["issuer"].indexes["balances"].query_aggregate("bob", 1, 7)
    assert answer.aggregate is not None
    assert answer.aggregate.count >= 2  # create + at least one payment
    assert verify_agg(world["client"], "balances", answer)


def test_augmented_scheme_certifies_aggregate_index(world):
    tip = world["issuer"].certified[-1]
    fresh = SuperlightClient(
        world["issuer"].measurement, world["issuer"].ias.public_key
    )
    fresh.validate_chain(tip.block.header, tip.certificate)
    assert fresh.validate_index_certificate(
        "balances", tip.block.header, tip.index_roots["balances"],
        tip.augmented_certificates["balances"],
    )
