"""The unified typed query API: execute(), verify(), deprecation."""

from dataclasses import replace

import pytest

from repro.chain import ChainBuilder
from repro.chain.genesis import make_genesis
from repro.chain.transaction import sign_transaction
from repro.crypto import generate_keypair
from repro.errors import QueryError
from repro.query import (
    AggregateQuery,
    HistoryQuery,
    KeywordQuery,
    QueryAnswer,
    QueryRequest,
    ValueRangeQuery,
    verify,
)
from repro.query.indexes import (
    AccountHistoryIndexSpec,
    BalanceAggregateIndexSpec,
    KeywordIndexSpec,
    ValueRangeIndexSpec,
)
from repro.query.provider import QueryServiceProvider
from tests.conftest import fresh_vm


@pytest.fixture(scope="module")
def api_world():
    """A provider with all four index families over one small chain."""
    user = generate_keypair(b"api-user")
    builder = ChainBuilder(difficulty_bits=4, network="query-api")
    nonce = [0]

    def tx(contract, method, *args):
        signed = sign_transaction(
            user.private, nonce[0], contract, method, tuple(args)
        )
        nonce[0] += 1
        return signed

    builder.add_block([tx("smallbank", "create", "a1", "1000", "500"),
                       tx("smallbank", "create", "a2", "40", "0")])
    for round_ in range(4):
        builder.add_block([
            tx("smallbank", "deposit_checking", "a1", "100"),
            tx("kvstore", "put", "k1", f"v{round_}"),
        ])

    specs = [
        AccountHistoryIndexSpec(name="history"),
        KeywordIndexSpec(name="keyword"),
        BalanceAggregateIndexSpec(name="aggregate"),
        ValueRangeIndexSpec(name="range"),
    ]
    genesis, state = make_genesis(network="query-api")
    provider = QueryServiceProvider(
        genesis, state, fresh_vm(), builder.pow, specs
    )
    for block in builder.blocks[1:]:
        provider.ingest_block(block)
    return provider, builder.height


@pytest.fixture(scope="module")
def requests_answers(api_world):
    provider, height = api_world
    requests = {
        "history": HistoryQuery(
            index="history", account="k1", t_from=1, t_to=height
        ),
        "aggregate": AggregateQuery(
            index="aggregate", account="a1", t_from=1, t_to=height
        ),
        "range": ValueRangeQuery(index="range", lo=0, hi=10_000),
        "keyword": KeywordQuery(index="keyword", keywords=("k1",)),
    }
    return requests, {
        name: provider.execute(request) for name, request in requests.items()
    }


def test_execute_answers_every_family(requests_answers, api_world):
    requests, answers = requests_answers
    for name, answer in answers.items():
        assert isinstance(answer, QueryAnswer)
        assert answer.request == requests[name]
        assert answer.proof_size_bytes() == answer.payload.proof_size_bytes()
        assert answer.proof_size_bytes() > 0
    assert len(answers["history"].payload.versions) == 4
    assert answers["aggregate"].payload.aggregate.count == 5
    assert len(answers["range"].payload.matches) >= 1
    assert len(answers["keyword"].payload.results) >= 1


def test_unified_verify_accepts_every_family(requests_answers, api_world):
    provider, _ = api_world
    requests, answers = requests_answers
    for name, request in requests.items():
        assert verify(request, answers[name], provider.index_root)


def test_verify_accepts_mapping_root_source(requests_answers, api_world):
    provider, _ = api_world
    requests, answers = requests_answers
    for name, request in requests.items():
        roots = {request.index: provider.index_root(request.index)}
        assert verify(request, answers[name], roots)


def test_verify_rejects_answer_to_a_different_request(requests_answers, api_world):
    provider, height = api_world
    requests, answers = requests_answers
    asked = replace(requests["history"], t_to=height - 1)
    assert not verify(asked, answers["history"], provider.index_root)


def test_verify_rejects_cross_family_payload(requests_answers, api_world):
    provider, _ = api_world
    requests, answers = requests_answers
    frankenstein = QueryAnswer(
        request=requests["history"], payload=answers["keyword"].payload
    )
    assert not verify(requests["history"], frankenstein, provider.index_root)


def test_verify_rejects_tampered_payload(requests_answers, api_world):
    provider, _ = api_world
    requests, answers = requests_answers
    answer = answers["history"]
    tampered = replace(
        answer,
        payload=replace(answer.payload, versions=answer.payload.versions[:-1]),
    )
    assert not verify(requests["history"], tampered, provider.index_root)


def test_verify_without_certified_root_raises(requests_answers):
    requests, answers = requests_answers
    with pytest.raises(QueryError, match="no certified root"):
        verify(requests["history"], answers["history"], {})


def test_execute_unknown_index_rejected(api_world):
    provider, _ = api_world
    with pytest.raises(QueryError, match="unknown index"):
        provider.execute(
            HistoryQuery(index="nope", account="k1", t_from=1, t_to=2)
        )


def test_execute_wrong_family_rejected(api_world):
    provider, _ = api_world
    with pytest.raises(QueryError, match="does not support"):
        provider.execute(
            HistoryQuery(index="keyword", account="k1", t_from=1, t_to=2)
        )
    with pytest.raises(QueryError, match="does not support"):
        provider.execute(ValueRangeQuery(index="history", lo=0, hi=1))


def test_execute_unrecognized_request_type_rejected(api_world):
    provider, _ = api_world
    with pytest.raises(QueryError, match="unrecognized"):
        provider.execute(QueryRequest(index="history"))


def test_keyword_request_canonicalizes_list_input():
    request = KeywordQuery(index="keyword", keywords=["b", "a"])
    assert request.keywords == ("b", "a")
    assert request == KeywordQuery(index="keyword", keywords=("b", "a"))


def test_removed_legacy_wrappers_raise_attribute_error(api_world):
    """The pre-typed-API surface is gone, not deprecated: the per-type
    ``query_*`` provider methods and ``verify_*`` client wrappers were
    removed in PR 5 and must fail loudly, not warn."""
    from repro.core.superlight import SuperlightClient

    provider, _height = api_world
    for removed in (
        "query_history",
        "query_aggregate",
        "query_value_range",
        "query_keywords",
    ):
        with pytest.raises(AttributeError):
            getattr(provider, removed)
    for removed in (
        "verify_history",
        "verify_aggregate",
        "verify_value_range",
        "verify_keyword",
    ):
        assert not hasattr(SuperlightClient, removed)
