"""The verified-answer cache: LRU mechanics, invalidation, and the
byte-identity property (a cached answer is indistinguishable on the
wire from a fresh one computed at the same certified root)."""

import pytest

from repro.chain.genesis import make_genesis
from repro.core import (
    IssuerService,
    ClientConfig,
    connect,
    compute_expected_measurement,
)
from repro.net import (
    HealthPolicy,
    MessageBus,
    QueryGateway,
    RetryPolicy,
    wire,
)
from repro.query import HistoryQuery, QueryAnswer, QueryService
from repro.query.answercache import VerifiedAnswerCache
from repro.query.provider import QueryServiceProvider
from tests.conftest import fresh_vm


def req(i: int) -> HistoryQuery:
    return HistoryQuery(index="history", account=f"k{i}", t_from=1, t_to=10)


def ans(i: int) -> QueryAnswer:
    return QueryAnswer(request=req(i), payload=i)


ROOT = b"\x11" * 32
OTHER = b"\x22" * 32


# -- unit mechanics ----------------------------------------------------------


def test_miss_then_hit_counts():
    cache = VerifiedAnswerCache(capacity=4)
    assert cache.get(req(0), ROOT) is None
    cache.put(req(0), ROOT, ans(0))
    assert cache.get(req(0), ROOT) == ans(0)
    assert (cache.hits, cache.misses) == (1, 1)


def test_same_request_different_root_is_a_miss():
    cache = VerifiedAnswerCache(capacity=4)
    cache.put(req(0), ROOT, ans(0))
    assert cache.get(req(0), OTHER) is None


def test_lru_evicts_least_recently_used():
    cache = VerifiedAnswerCache(capacity=2)
    cache.put(req(0), ROOT, ans(0))
    cache.put(req(1), ROOT, ans(1))
    cache.get(req(0), ROOT)  # touch 0 so 1 becomes the eviction victim
    cache.put(req(2), ROOT, ans(2))
    assert len(cache) == 2
    assert cache.evictions == 1
    assert cache.get(req(1), ROOT) is None
    assert cache.get(req(0), ROOT) == ans(0)
    assert cache.get(req(2), ROOT) == ans(2)


def test_retain_roots_sweeps_superseded_entries():
    cache = VerifiedAnswerCache(capacity=8)
    cache.put(req(0), ROOT, ans(0))
    cache.put(req(1), ROOT, ans(1))
    cache.put(req(2), OTHER, ans(2))
    assert cache.retain_roots([OTHER]) == 2
    assert cache.invalidations == 2
    assert len(cache) == 1
    assert cache.get(req(2), OTHER) == ans(2)


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        VerifiedAnswerCache(capacity=0)


# -- the stale sidecar (graceful degradation) --------------------------------


def test_stale_sidecar_survives_root_advance():
    cache = VerifiedAnswerCache(capacity=4)
    cache.put(req(0), ROOT, ans(0), height=7)
    assert cache.retain_roots([OTHER]) == 1  # fresh entry swept...
    assert cache.get(req(0), ROOT) is None
    stale = cache.get_stale(req(0))  # ...the sidecar remembers
    assert stale is not None and stale.stale is True
    assert stale.answer == ans(0)
    assert stale.root == ROOT and stale.height == 7
    assert (cache.stale_hits, cache.stale_misses) == (1, 0)


def test_stale_sidecar_tracks_the_newest_verified_answer():
    cache = VerifiedAnswerCache(capacity=4)
    cache.put(req(0), ROOT, ans(0), height=7)
    newer = QueryAnswer(request=req(0), payload=99)
    cache.put(req(0), OTHER, newer, height=8)
    stale = cache.get_stale(req(0))
    assert stale.answer == newer and stale.height == 8


def test_stale_sidecar_is_never_consulted_by_the_fresh_path():
    cache = VerifiedAnswerCache(capacity=4)
    cache.put(req(0), ROOT, ans(0))
    cache.retain_roots([OTHER])
    # Root-exact lookups stay misses even though the sidecar has it.
    assert cache.get(req(0), ROOT) is None
    assert cache.get(req(0), OTHER) is None


def test_stale_sidecar_miss_is_counted():
    cache = VerifiedAnswerCache(capacity=4)
    assert cache.get_stale(req(0)) is None
    assert cache.stale_misses == 1


def test_stale_sidecar_is_lru_bounded_and_cleared():
    cache = VerifiedAnswerCache(capacity=2)
    for i in range(4):
        cache.put(req(i), ROOT, ans(i))
    assert len(cache._stale) == 2
    assert cache.get_stale(req(0)) is None  # evicted with the LRU
    assert cache.get_stale(req(3)) is not None
    cache.clear()
    assert cache.get_stale(req(3)) is None


# -- the byte-identity property ---------------------------------------------


@pytest.fixture(scope="module")
def fleet(certified_setup):
    chain = certified_setup["chain"]
    genesis, state = make_genesis()
    provider = QueryServiceProvider(
        genesis, state, fresh_vm(), chain.pow,
        list(certified_setup["specs"].values()),
    )
    for block in chain.blocks[1:]:
        provider.ingest_block(block)
    bus = MessageBus(default_latency_ms=10.0)
    IssuerService(bus, "ci", certified_setup["issuer"])
    for name in ("sp1", "sp2"):
        QueryService(bus, name, provider)
    gateway = QueryGateway(
        bus, "gw", ["sp1", "sp2"],
        policy=RetryPolicy(timeout_ms=120.0, max_attempts=1),
        health=HealthPolicy(failure_threshold=2),
    )
    measurement = compute_expected_measurement(
        certified_setup["genesis"].header.header_hash(),
        certified_setup["ias"].public_key,
        fresh_vm(),
        chain.pow.difficulty_bits,
        certified_setup["specs"],
    )
    client = connect(ClientConfig(
        measurement=measurement,
        ias_public_key=certified_setup["ias"].public_key,
        bus=bus, name="client",
        issuers=("ci",), gateway=gateway,
    ))
    client.bootstrap()
    return {"client": client, "provider": provider, "gateway": gateway}


def test_cached_answer_is_byte_identical_to_fresh(fleet):
    """Property: for every request shape, the answer served from the
    warm cache encodes to exactly the bytes a fresh provider execution
    yields at the same certified root."""
    client, provider = fleet["client"], fleet["provider"]
    requests = [req(i) for i in range(4)]
    for request in requests:
        cold = client.query(request)          # fills the cache
        warm = client.query(request)          # served from the cache
        fresh = provider.execute(request)     # recomputed at the same root
        assert wire.encode(warm) == wire.encode(cold) == wire.encode(fresh)


def test_warm_hits_do_zero_rpc_round_trips(fleet):
    client = fleet["client"]
    request = req(0)
    client.query(request)  # warm (possibly already from the other test)
    calls_before = client.rpc.calls + fleet["gateway"].rpc.calls
    answer = client.query(request)
    assert isinstance(answer, QueryAnswer)
    assert client.rpc.calls + fleet["gateway"].rpc.calls == calls_before


# -- graceful degradation through the client ---------------------------------


def test_client_degrades_to_stale_when_the_tier_is_unreachable(certified_setup):
    """With ``degrade_to_stale=True``, a total serving-tier outage after
    one verified answer yields that answer back, explicitly flagged
    stale, instead of an error — and a client that never opted in still
    raises."""
    from repro.errors import ServiceUnavailableError
    from repro.net.faults import FaultInjector, LinkFaults
    from repro.query.answercache import StaleAnswer

    chain = certified_setup["chain"]
    genesis, state = make_genesis()
    provider = QueryServiceProvider(
        genesis, state, fresh_vm(), chain.pow,
        list(certified_setup["specs"].values()),
    )
    for block in chain.blocks[1:]:
        provider.ingest_block(block)
    bus = MessageBus(default_latency_ms=10.0)
    IssuerService(bus, "ci", certified_setup["issuer"])
    QueryService(bus, "sp1", provider)
    gateway = QueryGateway(
        bus, "gw", ["sp1"],
        policy=RetryPolicy(timeout_ms=120.0, max_attempts=1),
        health=HealthPolicy(failure_threshold=2),
    )
    measurement = compute_expected_measurement(
        certified_setup["genesis"].header.header_hash(),
        certified_setup["ias"].public_key,
        fresh_vm(),
        chain.pow.difficulty_bits,
        certified_setup["specs"],
    )
    client = connect(ClientConfig(
        measurement=measurement,
        ias_public_key=certified_setup["ias"].public_key,
        bus=bus, name="client",
        issuers=("ci",), gateway=gateway,
        degrade_to_stale=True,
    ))
    client.bootstrap()
    request = req(0)
    fresh = client.query(request)
    assert isinstance(fresh, QueryAnswer)

    injector = FaultInjector(seed=9)
    injector.set_link("gw", "sp1", LinkFaults(drop_rate=1.0))
    bus.install_faults(injector)
    # The fresh cache would still hit at the current root; a *new*
    # request shape has nothing cached and must reach the dead tier.
    # The warmed request only degrades once its root-keyed entry is
    # gone, so drop it to model a tip advance sweeping the cache.
    client.cache.retain_roots([])
    degraded = client.query(request)
    assert isinstance(degraded, StaleAnswer)
    assert degraded.stale is True
    assert wire.encode(degraded.answer) == wire.encode(fresh)
    assert client.stale_served == 1

    # Nothing verified on hand for an unseen request: the error
    # propagates even with degradation enabled.
    with pytest.raises(ServiceUnavailableError):
        client.query(req(3))
