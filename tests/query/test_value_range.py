"""Verifiable current-value range queries (the on-demand query type)."""

import pytest
from dataclasses import replace

from repro.chain.builder import ChainBuilder
from repro.chain.genesis import make_genesis
from repro.chain.transaction import sign_transaction
from repro.core.issuer import CertificateIssuer
from repro.core.superlight import SuperlightClient
from repro.crypto import generate_keypair
from repro.query.api import QueryAnswer, ValueRangeQuery
from repro.query.indexes import (
    ValueRangeIndex,
    ValueRangeIndexSpec,
    verify_value_range_answer,
)
from repro.sgx.attestation import AttestationService
from tests.conftest import fresh_vm


@pytest.fixture(scope="module")
def world():
    keypair = generate_keypair(b"vr-tests")
    builder = ChainBuilder(difficulty_bits=4, network="vrnet")
    nonce = [0]

    def bank(method, *args):
        tx = sign_transaction(keypair.private, nonce[0], "smallbank", method, tuple(args))
        nonce[0] += 1
        return tx

    builder.add_block([
        bank("create", "alice", "100", "0"),
        bank("create", "bob", "50", "0"),
        bank("create", "carol", "500", "0"),
    ])
    builder.add_block([bank("deposit_checking", "alice", "75")])   # alice 175
    builder.add_block([bank("send_payment", "carol", "bob", "300")])  # carol 200, bob 350
    builder.add_block([bank("create", "dave", "175", "0")])        # same value as alice

    spec = ValueRangeIndexSpec(name="range")
    genesis, state = make_genesis(network="vrnet")
    ias = AttestationService(seed=b"vr-ias")
    issuer = CertificateIssuer(
        genesis, state, fresh_vm(), builder.pow,
        index_specs=[spec], ias=ias, key_seed=b"vr-enclave",
    )
    for block in builder.blocks[1:]:
        issuer.process_block(block, schemes=("hierarchical", "augmented"))
    client = SuperlightClient(issuer.measurement, ias.public_key)
    tip = issuer.certified[-1]
    client.validate_chain(tip.block.header, tip.certificate)
    client.validate_index_certificate(
        "range", tip.block.header, tip.index_roots["range"],
        tip.index_certificates["range"],
    )
    return {"issuer": issuer, "client": client, "builder": builder}


def current_balances():
    return {"alice": 175, "bob": 350, "carol": 200, "dave": 175}


def verify_range(client, name, answer):
    """Check a bare ValueRangeAnswer through the unified typed API."""
    request = ValueRangeQuery(index=name, lo=answer.lo, hi=answer.hi)
    return client.verify_answer(
        request, QueryAnswer(request=request, payload=answer)
    )


def test_certified_root_tracks_index(world):
    issuer = world["issuer"]
    assert issuer.index_root("range") == issuer.indexes["range"].root


def test_range_query_returns_current_holders(world):
    answer = world["issuer"].indexes["range"].query_range(100, 400)
    expected = sorted(
        (value, account)
        for account, value in current_balances().items()
        if 100 <= value <= 400
    )
    assert sorted(answer.matches) == expected
    assert verify_range(world["client"], "range", answer)


def test_stale_values_are_tombstoned(world):
    """alice's original 100 and carol's original 500 must NOT appear."""
    answer = world["issuer"].indexes["range"].query_range(90, 110)
    assert all(account != "alice" for _, account in answer.matches)
    answer2 = world["issuer"].indexes["range"].query_range(450, 550)
    assert answer2.matches == ()
    assert verify_range(world["client"], "range", answer2)


def test_equal_values_both_reported(world):
    answer = world["issuer"].indexes["range"].query_range(175, 175)
    assert sorted(account for _, account in answer.matches) == ["alice", "dave"]
    assert verify_range(world["client"], "range", answer)


def test_withheld_match_rejected(world):
    answer = world["issuer"].indexes["range"].query_range(100, 400)
    assert len(answer.matches) >= 2
    withheld = replace(answer, matches=answer.matches[:-1])
    assert not verify_range(world["client"], "range", withheld)


def test_resurrected_tombstone_rejected(world):
    """An SP claiming a tombstoned (stale) value is live must fail: the
    tombstone byte is part of the authenticated entry."""
    answer = world["issuer"].indexes["range"].query_range(90, 110)
    # alice's stale 100-entry is among the raw entries as a tombstone.
    stale = [key for key, value in answer.entries if value == b"\x00"]
    assert stale, "expected a tombstoned entry in this window"
    resurrected = replace(
        answer, matches=answer.matches + ((100, "alice"),)
    )
    assert not verify_range(world["client"], "range", resurrected)


def test_wrong_window_rejected(world):
    answer = world["issuer"].indexes["range"].query_range(100, 200)
    widened = replace(answer, lo=0, hi=1000)
    assert not verify_range(world["client"], "range", widened)


def test_component_roots_bound_to_combined(world):
    answer = world["issuer"].indexes["range"].query_range(100, 400)
    forged = replace(answer, tree_root=bytes(32))
    assert not verify_range(world["client"], "range", forged)


def test_empty_window(world):
    answer = world["issuer"].indexes["range"].query_range(10_000, 20_000)
    assert answer.matches == ()
    assert verify_range(world["client"], "range", answer)


def test_spec_rejects_mismatched_proofs(world):
    """An SP reordering writes cannot produce the same certified root."""
    from repro.errors import ProofError

    spec = ValueRangeIndexSpec(name="range")
    fresh_index = ValueRangeIndex(spec)
    builder = world["builder"]
    # Ingest block 1 normally to get writes + proof, then try to apply
    # them against the wrong (post-ingest) root.
    block = builder.blocks[1]
    issuer = world["issuer"]
    result = None
    from repro.chain.node import FullNode

    genesis, state = make_genesis(network="vrnet")
    node = FullNode(genesis, state, fresh_vm(), builder.pow)
    result = node.validate_block(block)
    writes, proof = fresh_index.ingest_block(block, result.write_set)
    with pytest.raises(ProofError):
        spec.apply_writes(fresh_index.root, writes, proof)  # stale root
    # Against the correct pre-root it reproduces the index root exactly.
    assert spec.apply_writes(spec.genesis_root(), writes, proof) == fresh_index.root
