"""LineageChain baseline index: correctness and distance behaviour."""

import pytest
from dataclasses import replace

from repro.chain.builder import ChainBuilder
from repro.chain.transaction import sign_transaction
from repro.crypto import generate_keypair
from repro.query.indexes import AccountHistoryIndexSpec
from repro.query.lineagechain import LineageChainIndex, verify_lineage_answer


@pytest.fixture(scope="module")
def setup():
    keypair = generate_keypair(b"lineage-tests")
    builder = ChainBuilder(difficulty_bits=4)
    index = LineageChainIndex(AccountHistoryIndexSpec())
    nonce = 0
    for height in range(1, 31):
        txs = [
            sign_transaction(
                keypair.private, nonce, "kvstore", "put",
                ("acct0", f"val{height}"),
            )
        ]
        nonce += 1
        block, result = builder.add_block(txs)
        index.ingest_block(block, result.write_set)
    return builder, index


def test_window_query_roundtrip(setup):
    _, index = setup
    answer = index.query_history("acct0", 10, 15)
    assert [t for t, _ in answer.versions] == list(range(10, 16))
    assert verify_lineage_answer(index.root, answer)


def test_tampering_detected(setup):
    _, index = setup
    answer = index.query_history("acct0", 10, 15)
    assert not verify_lineage_answer(
        index.root, replace(answer, versions=answer.versions[:-1])
    )
    forged = ((answer.versions[0][0], b"evil"),) + answer.versions[1:]
    assert not verify_lineage_answer(index.root, replace(answer, versions=forged))


def test_unknown_account(setup):
    _, index = setup
    answer = index.query_history("ghost", 1, 30)
    assert answer.versions == ()
    assert verify_lineage_answer(index.root, answer)


def test_window_bounds_checked(setup):
    _, index = setup
    answer = index.query_history("acct0", 10, 15)
    widened = replace(answer, t_from=5, t_to=20)
    assert not verify_lineage_answer(index.root, widened)


def test_proof_size_grows_with_distance(setup):
    """The Fig. 11 asymmetry: windows far from the tip cost more."""
    _, index = setup
    near = index.query_history("acct0", 25, 28).proof_size_bytes()
    far = index.query_history("acct0", 2, 5).proof_size_bytes()
    assert far > near


def test_dcert_two_level_proofs_flat_in_distance():
    """Contrast: the MB-tree lower level costs the same near and far."""
    from repro.query.indexes import TwoLevelHistoryIndex

    keypair = generate_keypair(b"flat-tests")
    builder = ChainBuilder(difficulty_bits=4)
    index = TwoLevelHistoryIndex(AccountHistoryIndexSpec())
    nonce = 0
    for height in range(1, 31):
        block, result = builder.add_block(
            [
                sign_transaction(
                    keypair.private, nonce, "kvstore", "put", ("acct0", f"v{height}")
                )
            ]
        )
        nonce += 1
        index.ingest_block(block, result.write_set)
    near = index.query_history("acct0", 25, 28).proof_size_bytes()
    far = index.query_history("acct0", 2, 5).proof_size_bytes()
    assert abs(far - near) < max(far, near) * 0.5
