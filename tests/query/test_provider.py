"""The Query Service Provider: ingestion and query dispatch."""

import pytest

from repro.chain.genesis import make_genesis
from repro.errors import QueryError
from repro.query.api import HistoryQuery, KeywordQuery
from repro.query.indexes import AccountHistoryIndexSpec, KeywordIndexSpec
from repro.query.provider import QueryServiceProvider
from tests.conftest import fresh_vm


@pytest.fixture()
def provider(kv_chain):
    genesis, state = make_genesis()
    provider = QueryServiceProvider(
        genesis,
        state,
        fresh_vm(),
        kv_chain.pow,
        [AccountHistoryIndexSpec(name="history"), KeywordIndexSpec(name="keyword")],
        with_lineagechain_baseline=True,
    )
    for block in kv_chain.blocks[1:]:
        provider.ingest_block(block)
    return provider


def test_sp_tracks_chain(provider, kv_chain):
    assert provider.node.height == kv_chain.height
    assert provider.node.state.root == kv_chain.state.root


def test_sp_roots_match_ci_roots(provider, certified_setup):
    issuer = certified_setup["issuer"]
    assert provider.index_root("history") == issuer.index_root("history")
    assert provider.index_root("keyword") == issuer.index_root("keyword")


def test_history_query_against_certified_root(provider, certified_setup):
    from repro.query.verifier import verify_history_answer

    answer = provider.execute(
        HistoryQuery(index="history", account="k2", t_from=1, t_to=10)
    ).payload
    assert len(answer.versions) >= 1
    root = certified_setup["issuer"].index_root("history")
    assert verify_history_answer(root, answer)


def test_keyword_query_against_certified_root(provider, certified_setup):
    from repro.query.verifier import verify_keyword_answer

    answer = provider.execute(
        KeywordQuery(index="keyword", keywords=("v2",))
    ).payload
    assert len(answer.results) == 1
    root = certified_setup["issuer"].index_root("keyword")
    assert verify_keyword_answer(root, answer)


def test_baseline_answers_same_versions(provider):
    dcert = provider.execute(
        HistoryQuery(index="history", account="k2", t_from=1, t_to=10)
    ).payload
    baseline = provider.query_history_baseline("history", "k2", 1, 10)
    assert dcert.versions == baseline.versions


def test_baseline_answer_verifies(provider):
    from repro.query.verifier import verify_baseline_history_answer

    baseline = provider.query_history_baseline("history", "k2", 1, 10)
    root = provider.baselines["history"].root
    assert verify_baseline_history_answer(root, baseline)


def test_unknown_index_rejected(provider):
    with pytest.raises(QueryError):
        provider.execute(
            HistoryQuery(index="nope", account="k1", t_from=1, t_to=2)
        )
    with pytest.raises(QueryError):
        provider.execute(
            KeywordQuery(index="history", keywords=("x",))  # wrong kind
        )
    with pytest.raises(QueryError):
        provider.execute(
            HistoryQuery(index="keyword", account="k1", t_from=1, t_to=2)
        )
    with pytest.raises(QueryError):
        provider.query_history_baseline("keyword", "k1", 1, 2)
