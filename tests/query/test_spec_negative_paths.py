"""Negative paths for every index spec's enclave-side apply_writes.

Each test hands the trusted replay a subtly wrong proof bundle and
expects a :class:`ProofError` (or a root mismatch) — these are the
branches a malicious SP would have to defeat to get a bad index root
certified.
"""

import pytest
from dataclasses import replace

from repro.chain.builder import ChainBuilder
from repro.chain.transaction import sign_transaction
from repro.core.issuer import make_maintained_index
from repro.crypto import generate_keypair
from repro.errors import ProofError
from repro.query.indexes import (
    AccountHistoryIndexSpec,
    BalanceAggregateIndexSpec,
    KeywordIndexSpec,
    KeywordUpdateProof,
    TwoLevelUpdateProof,
    ValueRangeIndexSpec,
)


@pytest.fixture(scope="module")
def chain():
    keypair = generate_keypair(b"neg-tests")
    builder = ChainBuilder(difficulty_bits=4)
    nonce = [0]

    def tx(contract, method, args):
        built = sign_transaction(keypair.private, nonce[0], contract, method, args)
        nonce[0] += 1
        return built

    builder.add_block([
        tx("smallbank", "create", ("alice", "100", "0")),
        tx("kvstore", "put", ("doc1", "alpha beta")),
    ])
    builder.add_block([
        tx("smallbank", "deposit_checking", ("alice", "10")),
        tx("kvstore", "put", ("doc2", "alpha gamma")),
    ])
    return builder


def ingest_two(spec, chain):
    index = make_maintained_index(spec)
    first = index.ingest_block(chain.blocks[1], chain.results[1].write_set)
    mid_root = index.root
    second = index.ingest_block(chain.blocks[2], chain.results[2].write_set)
    return index, first, mid_root, second


def test_history_wrong_order_proofs(chain):
    spec = AccountHistoryIndexSpec(name="h")
    index, (writes1, proof1), mid_root, (writes2, proof2) = ingest_two(spec, chain)
    # Proofs from block 2 cannot apply at genesis.
    with pytest.raises(ProofError):
        spec.apply_writes(spec.genesis_root(), writes2, proof2)


def test_history_step_count_mismatch(chain):
    spec = AccountHistoryIndexSpec(name="h")
    index, (writes1, proof1), *_ = ingest_two(spec, chain)
    with pytest.raises(ProofError):
        spec.apply_writes(
            spec.genesis_root(), writes1, TwoLevelUpdateProof(steps=())
        )


def test_history_account_swap_detected(chain):
    spec = AccountHistoryIndexSpec(name="h")
    index, (writes1, proof1), *_ = ingest_two(spec, chain)
    if not writes1:
        pytest.skip("no history writes in block 1")
    swapped = (replace(writes1[0], account="mallory"),) + writes1[1:]
    with pytest.raises(ProofError):
        spec.apply_writes(spec.genesis_root(), swapped, proof1)


def test_keyword_reordered_steps_detected(chain):
    spec = KeywordIndexSpec(name="k")
    index, (writes1, proof1), *_ = ingest_two(spec, chain)
    if len(proof1.steps) < 2:
        pytest.skip("need at least two keyword steps")
    reordered = KeywordUpdateProof(steps=proof1.steps[::-1])
    with pytest.raises(ProofError):
        spec.apply_writes(spec.genesis_root(), writes1, reordered)


def test_keyword_missing_posting_detected(chain):
    spec = KeywordIndexSpec(name="k")
    index, (writes1, proof1), *_ = ingest_two(spec, chain)
    truncated = KeywordUpdateProof(steps=proof1.steps[:-1])
    with pytest.raises(ProofError):
        spec.apply_writes(spec.genesis_root(), writes1, truncated)


def test_aggregate_value_tamper_changes_root(chain):
    spec = BalanceAggregateIndexSpec(name="a")
    index, (writes1, proof1), mid_root, _ = ingest_two(spec, chain)
    if not writes1:
        pytest.skip("no aggregate writes in block 1")
    inflated = (replace(writes1[0], value=writes1[0].value + 1),) + writes1[1:]
    result = spec.apply_writes(spec.genesis_root(), inflated, proof1)
    assert result != mid_root  # certification would reject the mismatch


def test_value_range_component_roots_checked(chain):
    spec = ValueRangeIndexSpec(name="v")
    index, (writes1, proof1), *_ = ingest_two(spec, chain)
    lying = replace(proof1, pre_tree_root=bytes(32))
    with pytest.raises(ProofError):
        spec.apply_writes(spec.genesis_root(), writes1, lying)


def test_value_range_tombstone_required(chain):
    spec = ValueRangeIndexSpec(name="v")
    index, (writes1, proof1), mid_root, (writes2, proof2) = ingest_two(spec, chain)
    if not writes2 or proof2.steps[0][1] is None:
        pytest.skip("block 2 did not update an existing account")
    # Drop the tombstone step for an existing-account update.
    counter, _, live, directory = proof2.steps[0]
    no_tombstone = replace(
        proof2, steps=((counter, None, live, directory),) + proof2.steps[1:]
    )
    with pytest.raises(ProofError):
        spec.apply_writes(mid_root, writes2, no_tombstone)


def test_value_range_fanout_checked(chain):
    spec = ValueRangeIndexSpec(name="v", fanout=16)
    other = ValueRangeIndexSpec(name="v", fanout=8)
    index, (writes1, proof1), *_ = ingest_two(spec, chain)
    with pytest.raises(ProofError):
        other.apply_writes(other.genesis_root(), writes1, proof1)
