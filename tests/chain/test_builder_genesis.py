"""ChainBuilder and genesis construction."""

from repro.chain.builder import ChainBuilder
from repro.chain.genesis import make_genesis
from repro.chain.transaction import sign_transaction
from repro.crypto import generate_keypair


def test_genesis_is_deterministic():
    genesis_a, state_a = make_genesis()
    genesis_b, state_b = make_genesis()
    assert genesis_a.header.header_hash() == genesis_b.header.header_hash()
    assert state_a.root == state_b.root


def test_genesis_differs_across_networks():
    default, _ = make_genesis()
    other, _ = make_genesis(network="testnet")
    assert default.header.header_hash() != other.header.header_hash()


def test_genesis_shape():
    genesis, state = make_genesis()
    assert genesis.header.height == 0
    assert genesis.transactions == ()
    assert genesis.header.state_root == state.root
    assert genesis.check_tx_root()


def test_builder_grow_with_factory():
    keypair = generate_keypair(b"builder-tests")
    builder = ChainBuilder(difficulty_bits=2)
    heights_seen = []

    def factory(height):
        heights_seen.append(height)
        return [
            sign_transaction(
                keypair.private, height, "kvstore", "put", (f"k{height}", "v")
            )
        ]

    builder.grow(4, factory)
    assert builder.height == 4
    assert heights_seen == [1, 2, 3, 4]
    assert len(builder.blocks) == 5
    assert len(builder.results) == 5


def test_builder_custom_contracts():
    from repro.contracts import DoNothing

    builder = ChainBuilder(difficulty_bits=2, contracts=[DoNothing()])
    assert builder.vm.deployed() == ["donothing"]


def test_builder_headers_match_blocks():
    builder = ChainBuilder(difficulty_bits=2)
    builder.add_block([])
    headers = builder.headers()
    assert [h.height for h in headers] == [0, 1]
    assert headers[1].prev_hash == headers[0].header_hash()
