"""PoW consensus and the longest-chain rule."""

import pytest

from repro.chain.block import BlockHeader, ZERO_HASH
from repro.chain.consensus import ProofOfWork, select_chain
from repro.errors import ConsensusError


def template(height=1, bits=8):
    return BlockHeader(
        height=height,
        prev_hash=ZERO_HASH,
        nonce=0,
        difficulty_bits=bits,
        state_root=bytes(32),
        tx_root=bytes(32),
        timestamp=1_650_000_000,
    )


def test_solve_produces_valid_header():
    pow_engine = ProofOfWork(8)
    solved = pow_engine.solve(template(bits=8))
    assert pow_engine.check(solved)
    assert int.from_bytes(solved.header_hash(), "big") < pow_engine.target


def test_check_rejects_unsolved_header():
    pow_engine = ProofOfWork(16)
    unsolved = template(bits=16)
    # Nonce 0 almost certainly fails a 16-bit target; if not, bump it.
    if pow_engine.check(unsolved):
        unsolved = BlockHeader(
            1, ZERO_HASH, 1, 16, bytes(32), bytes(32), 1_650_000_000
        )
    assert not pow_engine.check(unsolved)


def test_check_rejects_wrong_difficulty_declaration():
    pow_engine = ProofOfWork(8)
    solved = pow_engine.solve(template(bits=8))
    weaker = ProofOfWork(12)
    assert not weaker.check(solved)


def test_difficulty_bounds():
    with pytest.raises(ConsensusError):
        ProofOfWork(-1)
    with pytest.raises(ConsensusError):
        ProofOfWork(65)


def test_select_chain_prefers_height():
    low, high = template(height=3), template(height=9)
    assert select_chain([low, high]) == high
    assert select_chain([high, low]) == high


def test_select_chain_ties_break_on_hash():
    a = template(height=5)
    b = BlockHeader(5, ZERO_HASH, 1, 8, bytes(32), bytes(32), 1_650_000_000)
    winner = select_chain([a, b])
    assert winner == min((a, b), key=lambda h: h.header_hash())


def test_select_chain_empty_raises():
    with pytest.raises(ConsensusError):
        select_chain([])


def test_zero_difficulty_accepts_anything():
    pow_engine = ProofOfWork(0)
    assert pow_engine.check(template(bits=0))
