"""State store and tracked views (read/write-set recording)."""

from repro.chain.state import StateStore, TrackedView, state_key


def test_state_key_is_stable_and_distinct():
    assert state_key("kvstore", "kv:a") == state_key("kvstore", "kv:a")
    assert state_key("kvstore", "kv:a") != state_key("kvstore", "kv:b")
    assert state_key("kvstore", "kv:a") != state_key("smallbank", "kv:a")
    assert len(state_key("c", "f")) == 32


def test_state_key_injective_on_separator():
    """contract='a', field='b:c' must differ from contract='a:b', field='c'."""
    assert state_key("a", "b:c") != state_key("a:b", "c")


def test_store_get_put_roundtrip():
    store = StateStore()
    key = state_key("kvstore", "kv:x")
    assert store.get_raw(key) is None
    store.put_raw(key, b"value")
    assert store.get_raw(key) == b"value"
    assert store.get("kvstore", "kv:x") == b"value"


def test_apply_writes_batches():
    store = StateStore()
    writes = {state_key("c", f"f{i}"): b"v%d" % i for i in range(10)}
    store.apply_writes(writes)
    assert len(store) == 10
    single = StateStore()
    for key, value in writes.items():
        single.put_raw(key, value)
    assert single.root == store.root


def test_tracked_view_records_pre_state_reads():
    store = StateStore()
    key = state_key("c", "f")
    store.put_raw(key, b"original")
    view = TrackedView(store)
    assert view.get_raw(key) == b"original"
    assert view.reads == {key: b"original"}
    assert view.writes == {}


def test_tracked_view_read_your_writes():
    store = StateStore()
    key = state_key("c", "f")
    store.put_raw(key, b"original")
    view = TrackedView(store)
    view.put_raw(key, b"new")
    assert view.get_raw(key) == b"new"
    # The pre-state value was never consulted: not in the read set.
    assert key not in view.reads


def test_tracked_view_records_absent_reads():
    store = StateStore()
    key = state_key("c", "missing")
    view = TrackedView(store)
    assert view.get_raw(key) is None
    assert view.reads == {key: None}


def test_tracked_view_does_not_touch_backing():
    store = StateStore()
    key = state_key("c", "f")
    view = TrackedView(store)
    view.put_raw(key, b"buffered")
    assert store.get_raw(key) is None


def test_touched_keys_union():
    store = StateStore()
    read_key = state_key("c", "read")
    write_key = state_key("c", "write")
    store.put_raw(read_key, b"r")
    view = TrackedView(store)
    view.get_raw(read_key)
    view.put_raw(write_key, b"w")
    assert set(view.touched_keys()) == {read_key, write_key}


def test_tracked_view_accepts_callable_backing():
    view = TrackedView(lambda key: b"constant")
    assert view.get_raw(b"\x00" * 32) == b"constant"


def test_prove_many_covers_values():
    store = StateStore()
    keys = [state_key("c", f"f{i}") for i in range(5)]
    for index, key in enumerate(keys[:3]):
        store.put_raw(key, b"v%d" % index)
    entries = store.prove_many(keys)
    assert [value for _, value, _ in entries] == [b"v0", b"v1", b"v2", None, None]
