"""Transactions: signing, verification, encoding."""

import pytest

from repro.chain.transaction import Transaction, sign_transaction
from repro.crypto import generate_keypair
from repro.errors import TransactionError


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair(b"tx-tests")


@pytest.fixture(scope="module")
def tx(keypair):
    return sign_transaction(keypair.private, 7, "kvstore", "put", ("k", "v"))


def test_signed_transaction_verifies(tx):
    assert tx.verify_signature()


def test_unsigned_transaction_fails(keypair):
    unsigned = Transaction(
        sender=keypair.public, nonce=1, contract="kvstore", method="put", args=("k", "v")
    )
    assert not unsigned.verify_signature()


def test_tampered_fields_break_signature(tx, keypair):
    for change in (
        {"nonce": 8},
        {"contract": "smallbank"},
        {"method": "get"},
        {"args": ("k", "other")},
    ):
        fields = {
            "sender": tx.sender,
            "nonce": tx.nonce,
            "contract": tx.contract,
            "method": tx.method,
            "args": tx.args,
            "signature": tx.signature,
        }
        fields.update(change)
        assert not Transaction(**fields).verify_signature(), change


def test_signature_not_transferable_between_senders(tx):
    other = generate_keypair(b"other-sender")
    stolen = Transaction(
        sender=other.public,
        nonce=tx.nonce,
        contract=tx.contract,
        method=tx.method,
        args=tx.args,
        signature=tx.signature,
    )
    assert not stolen.verify_signature()


def test_encode_decode_roundtrip(tx):
    decoded = Transaction.decode(tx.encode())
    assert decoded == tx
    assert decoded.verify_signature()
    assert decoded.tx_hash() == tx.tx_hash()


def test_decode_rejects_garbage():
    with pytest.raises(TransactionError):
        Transaction.decode(b"not json")
    with pytest.raises(TransactionError):
        Transaction.decode(b"{}")


def test_tx_hash_covers_signature(tx, keypair):
    resigned = sign_transaction(keypair.private, 8, "kvstore", "put", ("k", "v"))
    assert resigned.tx_hash() != tx.tx_hash()


def test_signing_payload_deterministic(tx):
    assert tx.signing_payload() == tx.signing_payload()
