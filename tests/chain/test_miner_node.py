"""Miner block production and full-node validation."""

import pytest

from repro.chain.block import Block, BlockHeader
from repro.chain.builder import ChainBuilder
from repro.chain.genesis import make_genesis
from repro.chain.mempool import Mempool
from repro.chain.node import FullNode
from repro.chain.transaction import sign_transaction
from repro.chain.vm import VM
from repro.contracts import BLOCKBENCH
from repro.crypto import generate_keypair
from repro.errors import BlockValidationError


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair(b"node-tests")


def fresh_vm():
    vm = VM()
    for factory in BLOCKBENCH.values():
        vm.deploy(factory())
    return vm


def fresh_node(pow_engine):
    genesis, state = make_genesis()
    return FullNode(genesis, state, fresh_vm(), pow_engine)


def kv_tx(keypair, nonce):
    return sign_transaction(
        keypair.private, nonce, "kvstore", "put", (f"k{nonce}", f"v{nonce}")
    )


@pytest.fixture()
def builder(keypair):
    builder = ChainBuilder(difficulty_bits=4)
    nonce = 0
    for _ in range(5):
        builder.add_block([kv_tx(keypair, nonce), kv_tx(keypair, nonce + 1)])
        nonce += 2
    return builder


def test_mined_blocks_are_valid_pow(builder):
    for block in builder.blocks[1:]:
        assert builder.pow.check(block.header)
        assert block.check_tx_root()


def test_full_node_replays_chain(builder):
    node = fresh_node(builder.pow)
    for block in builder.blocks[1:]:
        node.append_block(block)
    assert node.height == builder.height
    assert node.state.root == builder.state.root


def test_node_rejects_height_gap(builder):
    node = fresh_node(builder.pow)
    with pytest.raises(BlockValidationError):
        node.append_block(builder.blocks[2])  # skipping block 1


def test_node_rejects_broken_linkage(builder):
    node = fresh_node(builder.pow)
    block = builder.blocks[1]
    broken = Block(
        header=BlockHeader(
            height=1,
            prev_hash=bytes(32),
            nonce=block.header.nonce,
            difficulty_bits=block.header.difficulty_bits,
            state_root=block.header.state_root,
            tx_root=block.header.tx_root,
            timestamp=block.header.timestamp,
        ),
        transactions=block.transactions,
    )
    with pytest.raises(BlockValidationError):
        node.append_block(broken)


def test_node_rejects_tampered_transactions(builder):
    node = fresh_node(builder.pow)
    block = builder.blocks[1]
    tampered = Block(header=block.header, transactions=block.transactions[:-1])
    with pytest.raises(BlockValidationError):
        node.append_block(tampered)


def test_node_rejects_wrong_state_root(builder, keypair):
    node = fresh_node(builder.pow)
    block = builder.blocks[1]
    # Re-mine block 1 with a forged state root but valid PoW/tx root.
    forged_template = BlockHeader(
        height=1,
        prev_hash=block.header.prev_hash,
        nonce=0,
        difficulty_bits=builder.pow.difficulty_bits,
        state_root=bytes(32),
        tx_root=block.header.tx_root,
        timestamp=block.header.timestamp,
    )
    forged_header = builder.pow.solve(forged_template)
    with pytest.raises(BlockValidationError):
        node.append_block(Block(header=forged_header, transactions=block.transactions))


def test_node_validate_does_not_commit(builder):
    node = fresh_node(builder.pow)
    node.validate_block(builder.blocks[1])
    assert node.height == 0


def test_genesis_height_enforced(builder):
    genesis, state = make_genesis()
    bad = Block(header=builder.blocks[1].header, transactions=())
    with pytest.raises(BlockValidationError):
        FullNode(bad, state, fresh_vm(), builder.pow)


def test_miner_filters_invalid_candidates(keypair):
    builder = ChainBuilder(difficulty_bits=4)
    bad = sign_transaction(
        keypair.private, 0, "smallbank", "deposit_checking", ("ghost", "1")
    )
    good = kv_tx(keypair, 1)
    block, result = builder.add_block([bad, good])
    assert len(block.transactions) == 1
    assert len(result.rejected) == 1


def test_empty_block_keeps_state_root(keypair):
    builder = ChainBuilder(difficulty_bits=4)
    builder.add_block([kv_tx(keypair, 0)])
    root = builder.state.root
    block, _ = builder.add_block([])
    assert block.header.state_root == root
    node = fresh_node(builder.pow)
    for blk in builder.blocks[1:]:
        node.append_block(blk)


def test_mempool_fifo():
    pool = Mempool()
    keypair = generate_keypair(b"mempool")
    txs = [kv_tx(keypair, n) for n in range(5)]
    pool.add_many(txs[:3])
    pool.add(txs[3])
    pool.add(txs[4])
    assert len(pool) == 5
    assert pool.take(2) == txs[:2]
    assert pool.take(10) == txs[2:]
    assert pool.take(1) == []
