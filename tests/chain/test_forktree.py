"""Fork-aware node: branch tracking, reorgs, undo correctness."""

import pytest

from repro.chain.builder import ChainBuilder
from repro.chain.forktree import ForkAwareNode
from repro.chain.genesis import make_genesis
from repro.chain.transaction import sign_transaction
from repro.crypto import generate_keypair
from repro.errors import BlockValidationError
from tests.conftest import fresh_vm


KEYPAIR = generate_keypair(b"fork-node-tests")


def make_branches(common=3, a_extra=2, b_extra=4):
    """Two ChainBuilders sharing a ``common`` prefix, then diverging."""
    nonce = [0]

    def kv(key, value):
        tx = sign_transaction(KEYPAIR.private, nonce[0], "kvstore", "put", (key, value))
        nonce[0] += 1
        return tx

    branch_a = ChainBuilder(difficulty_bits=4, network="forktree")
    for height in range(1, common + 1):
        branch_a.add_block([kv(f"common{height}", "x")])
    branch_b = ChainBuilder(difficulty_bits=4, network="forktree")
    for block in branch_a.blocks[1:]:
        branch_b.blocks.append(block)
        result = branch_b.miner.executor.execute(
            branch_b.state, list(block.transactions), strict=True
        )
        branch_b.state.apply_writes(result.write_set)
        branch_b.results.append(result)
    for height in range(a_extra):
        branch_a.add_block([kv(f"a{height}", "a")])
    for height in range(b_extra):
        branch_b.add_block([kv(f"b{height}", "b"), kv(f"shared", f"b{height}")])
    return branch_a, branch_b


@pytest.fixture()
def node():
    genesis, state = make_genesis(network="forktree")
    return ForkAwareNode(
        genesis, state, fresh_vm(), ChainBuilder(difficulty_bits=4).pow
    )


def test_linear_extension(node):
    branch_a, _ = make_branches()
    for block in branch_a.blocks[1:]:
        assert node.add_block(block)
    assert node.height == branch_a.height
    assert node.state.root == branch_a.state.root


def test_duplicate_block_ignored(node):
    branch_a, _ = make_branches()
    node.add_block(branch_a.blocks[1])
    assert node.add_block(branch_a.blocks[1]) is False


def test_orphan_rejected(node):
    branch_a, _ = make_branches()
    with pytest.raises(BlockValidationError):
        node.add_block(branch_a.blocks[3])


def test_shorter_side_branch_stored_but_not_followed(node):
    branch_a, branch_b = make_branches(common=3, a_extra=4, b_extra=2)
    for block in branch_a.blocks[1:]:
        node.add_block(block)
    tip_before = node.tip.block_hash()
    changed = False
    for block in branch_b.blocks[4:]:
        changed |= node.add_block(block)
    assert not changed
    assert node.tip.block_hash() == tip_before
    assert node.state.root == branch_a.state.root
    assert len(node.branch_tips()) == 2


def test_reorg_to_longer_branch(node):
    branch_a, branch_b = make_branches(common=3, a_extra=2, b_extra=4)
    for block in branch_a.blocks[1:]:
        node.add_block(block)
    assert node.state.root == branch_a.state.root
    # Branch B arrives; it overtakes at its 3rd extra block (height 6).
    for block in branch_b.blocks[4:]:
        node.add_block(block)
    assert node.height == branch_b.height
    assert node.state.root == branch_b.state.root
    assert node.reorg_count >= 1
    assert [b.block_hash() for b in node.active_chain()] == [
        b.block_hash() for b in branch_b.blocks
    ]


def test_reorg_back_and_forth(node):
    branch_a, branch_b = make_branches(common=2, a_extra=3, b_extra=4)
    for block in branch_a.blocks[1:]:
        node.add_block(block)
    for block in branch_b.blocks[3:]:
        node.add_block(block)
    assert node.state.root == branch_b.state.root
    # Branch A grows past B again.
    nonce = 9000

    def kv(key, value):
        nonlocal nonce
        tx = sign_transaction(KEYPAIR.private, nonce, "kvstore", "put", (key, value))
        nonce += 1
        return tx

    for height in range(3):
        branch_a.add_block([kv(f"late{height}", "a")])
        node.add_block(branch_a.blocks[-1])
    assert node.height == branch_a.height
    assert node.state.root == branch_a.state.root
    assert node.reorg_count >= 2


def test_undo_restores_deleted_and_fresh_cells(node):
    """Reorg across blocks that create and delete cells must restore
    state exactly (undo values include absences)."""
    nonce = [0]

    def tx(method, args):
        built = sign_transaction(KEYPAIR.private, nonce[0], "kvstore", method, args)
        nonce[0] += 1
        return built

    base = ChainBuilder(difficulty_bits=4, network="forktree")
    base.add_block([tx("put", ("cell", "original"))])
    node.add_block(base.blocks[1])

    # Branch A: delete the cell.  Branch B (longer): overwrite it twice.
    branch_a = base
    branch_a.add_block([tx("delete", ("cell",))])
    node.add_block(branch_a.blocks[2])
    assert node.state.get("kvstore", "kv:cell") is None

    branch_b = ChainBuilder(difficulty_bits=4, network="forktree")
    for block in base.blocks[1:2]:
        branch_b.blocks.append(block)
        result = branch_b.miner.executor.execute(
            branch_b.state, list(block.transactions), strict=True
        )
        branch_b.state.apply_writes(result.write_set)
    branch_b.add_block([tx("put", ("cell", "b1"))])
    branch_b.add_block([tx("put", ("cell", "b2"))])
    node.add_block(branch_b.blocks[2])
    node.add_block(branch_b.blocks[3])
    assert node.state.get("kvstore", "kv:cell") == b"b2"
    assert node.state.root == branch_b.state.root


def test_poisoned_branch_aborts_reorg(node):
    """A longer branch whose tip lies about its state root must not
    leave the node on a half-applied branch."""
    from dataclasses import replace

    from repro.chain.block import Block

    branch_a, branch_b = make_branches(common=2, a_extra=2, b_extra=3)
    for block in branch_a.blocks[1:]:
        node.add_block(block)  # node follows A, height 4
    # Corrupt branch B's height-5 tip: valid PoW + tx root, forged
    # state root — the overtaking block that forces a reorg attempt.
    good = branch_b.blocks[-1]
    forged_template = replace(good.header, state_root=bytes(32), nonce=0)
    forged = Block(
        header=branch_b.pow.solve(forged_template),
        transactions=good.transactions,
    )
    node.add_block(branch_b.blocks[3])  # height 3 side block: stored
    node.add_block(branch_b.blocks[4])  # height 4 side block: stored
    with pytest.raises(BlockValidationError):
        node.add_block(forged)
    # Node stays on (or returns to) the honest branch A.
    assert node.state.root == branch_a.state.root
    assert node.height == branch_a.height
    assert not node.knows(forged.header.header_hash())


def test_branch_tips_enumeration(node):
    branch_a, branch_b = make_branches(common=2, a_extra=1, b_extra=1)
    for block in branch_a.blocks[1:]:
        node.add_block(block)
    for block in branch_b.blocks[3:]:
        node.add_block(block)
    tips = {tip.block_hash() for tip in node.branch_tips()}
    assert branch_a.tip.block_hash() in tips
    assert branch_b.tip.block_hash() in tips
