"""Block headers and blocks: hashing, encoding, tx root binding."""

import pytest

from repro.chain.block import Block, BlockHeader, ZERO_HASH
from repro.chain.transaction import sign_transaction
from repro.crypto import generate_keypair
from repro.errors import BlockValidationError


@pytest.fixture(scope="module")
def header():
    return BlockHeader(
        height=5,
        prev_hash=bytes(range(32)),
        nonce=123,
        difficulty_bits=8,
        state_root=bytes(32),
        tx_root=bytes(32),
        timestamp=1_650_000_000,
    )


def test_header_hash_changes_with_every_field(header):
    base = header.header_hash()
    variants = [
        BlockHeader(6, header.prev_hash, 123, 8, header.state_root, header.tx_root, header.timestamp),
        BlockHeader(5, ZERO_HASH, 123, 8, header.state_root, header.tx_root, header.timestamp),
        BlockHeader(5, header.prev_hash, 124, 8, header.state_root, header.tx_root, header.timestamp),
        BlockHeader(5, header.prev_hash, 123, 9, header.state_root, header.tx_root, header.timestamp),
        BlockHeader(5, header.prev_hash, 123, 8, bytes([1]) + bytes(31), header.tx_root, header.timestamp),
        BlockHeader(5, header.prev_hash, 123, 8, header.state_root, bytes([1]) + bytes(31), header.timestamp),
        BlockHeader(5, header.prev_hash, 123, 8, header.state_root, header.tx_root, 1),
    ]
    hashes = {variant.header_hash() for variant in variants}
    assert base not in hashes
    assert len(hashes) == len(variants)


def test_header_encode_decode_roundtrip(header):
    assert BlockHeader.decode(header.encode()) == header


def test_header_decode_rejects_garbage():
    with pytest.raises(BlockValidationError):
        BlockHeader.decode(b"nope")


def test_header_size_bytes_positive(header):
    assert header.size_bytes() == len(header.encode()) > 100


def test_block_tx_root_binding(header):
    keypair = generate_keypair(b"block-tests")
    txs = tuple(
        sign_transaction(keypair.private, n, "kvstore", "put", (f"k{n}", "v"))
        for n in range(3)
    )
    block = Block(header=header, transactions=txs)
    good_header = BlockHeader(
        height=header.height,
        prev_hash=header.prev_hash,
        nonce=header.nonce,
        difficulty_bits=header.difficulty_bits,
        state_root=header.state_root,
        tx_root=block.compute_tx_root(),
        timestamp=header.timestamp,
    )
    assert Block(header=good_header, transactions=txs).check_tx_root()
    assert not Block(header=good_header, transactions=txs[:-1]).check_tx_root()
    assert not block.check_tx_root()  # zero tx_root


def test_empty_block_tx_root():
    from repro.merkle.mht import EMPTY_ROOT

    block = Block(
        header=BlockHeader(0, ZERO_HASH, 0, 0, bytes(32), EMPTY_ROOT, 0),
        transactions=(),
    )
    assert block.check_tx_root()
