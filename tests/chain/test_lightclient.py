"""The traditional light client baseline."""

import pytest

from repro.chain.block import BlockHeader
from repro.chain.lightclient import LightClient
from repro.errors import BlockValidationError


@pytest.fixture()
def client(kv_chain):
    return LightClient(kv_chain.genesis.header, kv_chain.pow)


def test_bootstrap_full_chain(client, kv_chain):
    client.bootstrap(kv_chain.headers()[1:])
    assert client.tip.height == kv_chain.height
    assert len(client.headers) == kv_chain.height + 1


def test_storage_grows_linearly(client, kv_chain):
    sizes = []
    for header in kv_chain.headers()[1:]:
        client.sync_header(header)
        sizes.append(client.storage_bytes())
    deltas = [b - a for a, b in zip(sizes, sizes[1:])]
    assert all(delta > 0 for delta in deltas)


def test_rejects_height_gap(client, kv_chain):
    with pytest.raises(BlockValidationError):
        client.sync_header(kv_chain.headers()[2])


def test_rejects_broken_linkage(client, kv_chain):
    good = kv_chain.headers()[1]
    broken = BlockHeader(
        height=1,
        prev_hash=bytes(32),
        nonce=good.nonce,
        difficulty_bits=good.difficulty_bits,
        state_root=good.state_root,
        tx_root=good.tx_root,
        timestamp=good.timestamp,
    )
    with pytest.raises(BlockValidationError):
        client.sync_header(broken)


def test_rejects_invalid_pow(client, kv_chain):
    good = kv_chain.headers()[1]
    candidates = (
        BlockHeader(1, good.prev_hash, nonce, good.difficulty_bits,
                    good.state_root, good.tx_root, good.timestamp)
        for nonce in range(10_000)
    )
    bad = next(c for c in candidates if not kv_chain.pow.check(c))
    with pytest.raises(BlockValidationError):
        client.sync_header(bad)


def test_validate_stored_chain(client, kv_chain):
    client.bootstrap(kv_chain.headers()[1:])
    assert client.validate_stored_chain()
    client.headers[3] = kv_chain.headers()[5]  # corrupt storage
    assert not client.validate_stored_chain()


def test_genesis_height_enforced(kv_chain):
    with pytest.raises(BlockValidationError):
        LightClient(kv_chain.headers()[1], kv_chain.pow)
