"""Transaction executor: read/write sets, strict vs miner mode."""

import pytest

from repro.chain.executor import TransactionExecutor
from repro.chain.state import StateStore, state_key
from repro.chain.transaction import Transaction, sign_transaction
from repro.chain.vm import VM
from repro.contracts import BLOCKBENCH
from repro.crypto import generate_keypair
from repro.errors import BlockValidationError


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair(b"executor-tests")


@pytest.fixture()
def executor():
    vm = VM()
    for factory in BLOCKBENCH.values():
        vm.deploy(factory())
    return TransactionExecutor(vm)


def tx(keypair, nonce, method="put", args=("k", "v"), contract="kvstore"):
    return sign_transaction(keypair.private, nonce, contract, method, args)


def test_execute_collects_write_set(executor, keypair):
    result = executor.execute(StateStore(), [tx(keypair, 0), tx(keypair, 1, args=("k2", "v2"))])
    assert len(result.executed) == 2
    assert state_key("kvstore", "kv:k") in result.write_set
    assert state_key("kvstore", "kv:k2") in result.write_set


def test_read_set_has_pre_state_values_only(executor, keypair):
    store = StateStore()
    store.put_raw(state_key("kvstore", "kv:k"), b"old")
    # tx0 reads k (get), tx1 overwrites it, tx2 reads again (write buffer).
    txs = [
        tx(keypair, 0, method="get", args=("k",)),
        tx(keypair, 1, method="put", args=("k", "new")),
        tx(keypair, 2, method="get", args=("k",)),
    ]
    result = executor.execute(store, txs)
    assert result.read_set[state_key("kvstore", "kv:k")] == b"old"


def test_strict_mode_rejects_bad_signature(executor, keypair):
    good = tx(keypair, 0)
    forged = Transaction(
        sender=good.sender,
        nonce=99,
        contract=good.contract,
        method=good.method,
        args=good.args,
        signature=good.signature,
    )
    with pytest.raises(BlockValidationError):
        executor.execute(StateStore(), [forged], strict=True)


def test_miner_mode_filters_bad_signature(executor, keypair):
    good = tx(keypair, 0)
    forged = Transaction(
        sender=good.sender,
        nonce=99,
        contract=good.contract,
        method=good.method,
        args=good.args,
        signature=good.signature,
    )
    result = executor.execute(StateStore(), [forged, good], strict=False)
    assert result.executed == [good]
    assert len(result.rejected) == 1
    assert "signature" in result.rejected[0][1]


def test_miner_mode_filters_failing_contract_calls(executor, keypair):
    failing = tx(keypair, 0, contract="smallbank", method="deposit_checking", args=("ghost", "1"))
    ok = tx(keypair, 1)
    result = executor.execute(StateStore(), [failing, ok], strict=False)
    assert result.executed == [ok]
    assert len(result.rejected) == 1


def test_failed_tx_writes_are_discarded(executor, keypair):
    """send_payment debits then fails on the unknown destination; the
    debit must not leak into the write set."""
    store = StateStore()
    setup = tx(keypair, 0, contract="smallbank", method="create", args=("alice", "100", "0"))
    result = executor.execute(store, [setup])
    store.apply_writes(result.write_set)
    failing = tx(
        keypair, 1, contract="smallbank", method="send_payment", args=("alice", "ghost", "10")
    )
    result = executor.execute(store, [failing], strict=False)
    assert result.write_set == {}
    assert result.executed == []


def test_strict_mode_rejects_failing_contract_calls(executor, keypair):
    failing = tx(keypair, 0, contract="smallbank", method="deposit_checking", args=("ghost", "1"))
    with pytest.raises(BlockValidationError):
        executor.execute(StateStore(), [failing], strict=True)


def test_skip_signature_verification_flag(executor, keypair):
    unsigned = Transaction(
        sender=keypair.public, nonce=0, contract="kvstore", method="put", args=("k", "v")
    )
    result = executor.execute(
        StateStore(), [unsigned], strict=True, verify_signatures=False
    )
    assert len(result.executed) == 1


def test_execution_is_deterministic(executor, keypair):
    txs = [tx(keypair, n, args=(f"k{n % 3}", f"v{n}")) for n in range(9)]
    first = executor.execute(StateStore(), list(txs))
    second = executor.execute(StateStore(), list(txs))
    assert first.write_set == second.write_set
    assert first.read_set == second.read_set


def test_empty_batch(executor):
    result = executor.execute(StateStore(), [])
    assert result.executed == [] and result.write_set == {}
