"""The contract VM and the five Blockbench contracts."""

import pytest

from repro.chain.state import StateStore, TrackedView
from repro.chain.vm import VM, ContractContext
from repro.contracts import BLOCKBENCH, CPUHeavy, DoNothing, IOHeavy, KVStore, SmallBank
from repro.contracts.cpuheavy import _xorshift_sequence
from repro.errors import TransactionError


@pytest.fixture()
def vm():
    vm = VM()
    for factory in BLOCKBENCH.values():
        vm.deploy(factory())
    return vm


@pytest.fixture()
def view():
    return TrackedView(StateStore())


def call(vm, view, contract, method, args, sender="alice"):
    vm.execute_call(view, contract, method, tuple(args), sender)


def ctx_for(view, contract):
    return ContractContext(contract, view)


def test_registry_lists_all_contracts(vm):
    assert vm.deployed() == ["cpuheavy", "donothing", "ioheavy", "kvstore", "smallbank"]


def test_unknown_contract_rejected(vm, view):
    with pytest.raises(TransactionError):
        call(vm, view, "nope", "m", ())


def test_unnamed_contract_rejected():
    class Nameless(DoNothing):
        name = ""

    with pytest.raises(TransactionError):
        VM().deploy(Nameless())


# -- DoNothing ---------------------------------------------------------------


def test_donothing_touches_no_state(vm, view):
    call(vm, view, "donothing", "invoke", ())
    assert not view.reads and not view.writes


def test_donothing_rejects_unknown_method(vm, view):
    with pytest.raises(TransactionError):
        call(vm, view, "donothing", "destroy", ())


# -- CPUHeavy ----------------------------------------------------------------


def test_cpuheavy_sort_is_deterministic(vm):
    views = [TrackedView(StateStore()) for _ in range(2)]
    for view in views:
        call(vm, view, "cpuheavy", "sort", ("100", "7"))
    assert views[0].writes == views[1].writes
    assert len(views[0].writes) == 1


def test_cpuheavy_quicksort_is_correct():
    values = _xorshift_sequence(99, 200)
    assert CPUHeavy()._quicksort(values) == sorted(values)


def test_cpuheavy_rejects_bad_args(vm, view):
    with pytest.raises(TransactionError):
        call(vm, view, "cpuheavy", "sort", ("100",))
    with pytest.raises(TransactionError):
        call(vm, view, "cpuheavy", "sort", ("-5", "1"))
    with pytest.raises(TransactionError):
        call(vm, view, "cpuheavy", "sort", ("2000000", "1"))


def test_xorshift_depends_on_seed():
    assert _xorshift_sequence(1, 10) != _xorshift_sequence(2, 10)
    assert _xorshift_sequence(0, 3) == _xorshift_sequence(0, 3)  # seed 0 ok


# -- IOHeavy -----------------------------------------------------------------


def test_ioheavy_write_touches_n_cells(vm, view):
    call(vm, view, "ioheavy", "write", ("10", "0"))
    assert len(view.writes) == 10


def test_ioheavy_scan_reads_n_cells(vm, view):
    call(vm, view, "ioheavy", "scan", ("10", "0"))
    assert len(view.reads) == 10
    assert len(view.writes) == 1  # the scan-result cell


def test_ioheavy_mixed_reads_and_writes(vm, view):
    call(vm, view, "ioheavy", "mixed", ("10", "0"))
    assert len(view.reads) == 10
    assert len(view.writes) == 10


def test_ioheavy_mixed_increments(vm):
    store = StateStore()
    view = TrackedView(store)
    call(vm, view, "ioheavy", "mixed", ("3", "0"))
    for key, value in view.writes.items():
        store.put_raw(key, value)
    view2 = TrackedView(store)
    call(vm, view2, "ioheavy", "mixed", ("3", "0"))
    ctx = ctx_for(view2, "ioheavy")
    assert ctx.get_int("slot:0") == 2


def test_ioheavy_bounds(vm, view):
    with pytest.raises(TransactionError):
        call(vm, view, "ioheavy", "write", ("999999", "0"))
    with pytest.raises(TransactionError):
        call(vm, view, "ioheavy", "erase", ("1", "0"))


# -- KVStore -----------------------------------------------------------------


def test_kvstore_put_get_delete(vm):
    store = StateStore()
    view = TrackedView(store)
    call(vm, view, "kvstore", "put", ("name", "dcert"))
    assert ctx_for(view, "kvstore").get_str("kv:name") == "dcert"
    call(vm, view, "kvstore", "get", ("name",))
    assert ctx_for(view, "kvstore").get_str("kv-last-read:alice") == "dcert"
    call(vm, view, "kvstore", "delete", ("name",))
    assert ctx_for(view, "kvstore").get("kv:name") is None


def test_kvstore_get_missing_records_empty(vm, view):
    call(vm, view, "kvstore", "get", ("ghost",))
    assert ctx_for(view, "kvstore").get_str("kv-last-read:alice") == ""


def test_kvstore_arg_arity(vm, view):
    with pytest.raises(TransactionError):
        call(vm, view, "kvstore", "put", ("only-key",))
    with pytest.raises(TransactionError):
        call(vm, view, "kvstore", "get", ())


# -- SmallBank ----------------------------------------------------------------


@pytest.fixture()
def bank(vm):
    store = StateStore()
    view = TrackedView(store)
    call(vm, view, "smallbank", "create", ("alice", "100", "50"))
    call(vm, view, "smallbank", "create", ("bob", "10", "0"))
    for key, value in view.writes.items():
        store.put_raw(key, value)
    return vm, store


def balances(store, account):
    from repro.chain.state import state_key

    def get(field):
        raw = store.get_raw(state_key("smallbank", f"{field}:{account}"))
        return int.from_bytes(raw, "big", signed=True) if raw else 0

    return get("checking"), get("savings")


def run(bank, method, args):
    vm, store = bank
    view = TrackedView(store)
    call(vm, view, "smallbank", method, args)
    for key, value in view.writes.items():
        store.put_raw(key, value)


def test_deposit_checking(bank):
    run(bank, "deposit_checking", ("alice", "25"))
    assert balances(bank[1], "alice") == (125, 50)


def test_send_payment(bank):
    run(bank, "send_payment", ("alice", "bob", "40"))
    assert balances(bank[1], "alice")[0] == 60
    assert balances(bank[1], "bob")[0] == 50


def test_send_payment_insufficient_funds(bank):
    with pytest.raises(TransactionError):
        run(bank, "send_payment", ("bob", "alice", "999"))


def test_transact_savings_floor(bank):
    run(bank, "transact_savings", ("alice", "-50"))
    assert balances(bank[1], "alice")[1] == 0
    with pytest.raises(TransactionError):
        run(bank, "transact_savings", ("alice", "-1"))


def test_write_check_penalty(bank):
    run(bank, "write_check", ("alice", "200"))  # over total: penalty 1
    assert balances(bank[1], "alice")[0] == 100 - 200 - 1


def test_amalgamate(bank):
    run(bank, "amalgamate", ("alice", "bob"))
    assert balances(bank[1], "alice") == (0, 0)
    assert balances(bank[1], "bob")[0] == 10 + 150


def test_unknown_account_rejected(bank):
    with pytest.raises(TransactionError):
        run(bank, "deposit_checking", ("charlie", "1"))


def test_create_rejects_negative(bank):
    with pytest.raises(TransactionError):
        run(bank, "create", ("dave", "-1", "0"))
