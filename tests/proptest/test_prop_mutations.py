"""Forgery properties: any single-byte mutation is rejected.

For every certified artifact a client consumes — the certificate, the
block header it vouches for, and a verifiable query answer with its
Merkle proofs — flipping any single byte of the wire encoding must
lead to rejection: either the mutated bytes no longer decode, or the
client's verification entry points (``validate_chain`` /
``validate_index_certificate`` / ``verify_answer``) refuse the result.

A mutation may decode back to an object equal to the original (e.g. a
flip inside the hex alphabet's case bits); such mutations carry the
same meaning and are treated as a pass, not a forgery.

Seeds and replay: see tests/proptest/framework.py; failures print a
one-case replay command.
"""

from __future__ import annotations

import pytest

from repro.core.certificate import Certificate
from repro.core.superlight import SuperlightClient
from repro.errors import ReproError
from repro.net import wire
from repro.query.api import HistoryQuery, QueryAnswer
from tests.proptest.framework import mutate_one_byte, run_cases


@pytest.fixture(scope="module")
def world(certified_setup):
    issuer = certified_setup["issuer"]
    tip = issuer.certified[-1]
    client = SuperlightClient(
        issuer.measurement, certified_setup["ias"].public_key
    )
    assert client.validate_chain(tip.block.header, tip.certificate)
    client.validate_index_certificate(
        "history", tip.block.header,
        tip.index_roots["history"], tip.index_certificates["history"],
    )
    height = tip.block.header.height
    request = HistoryQuery(index="history", account="k1", t_from=1, t_to=height)
    answer = issuer.indexes["history"].query_history("k1", 1, height)
    assert client.verify_answer(
        request, QueryAnswer(request=request, payload=answer)
    )
    return {
        "issuer": issuer,
        "tip": tip,
        "client": client,
        "request": request,
        "answer": answer,
    }


def _fresh_client(world) -> SuperlightClient:
    # Never reuse the fixture client for rejection checks: a mutated
    # certificate must not poison its report cache or adopted state.
    return SuperlightClient(
        world["client"].expected_measurement, world["client"].ias_public_key
    )


def test_certificate_single_byte_mutations_rejected(world):
    original = world["tip"].certificate
    encoded = original.encode()

    def prop(rng):
        mutated = mutate_one_byte(encoded, rng)
        try:
            corrupted = Certificate.decode(mutated)
        except ReproError:
            return  # no longer decodes: rejected at the parse boundary
        if corrupted == original:
            return  # same meaning, not a forgery
        try:
            accepted = _fresh_client(world).validate_chain(
                world["tip"].block.header, corrupted
            )
        except ReproError:
            return
        assert not accepted, "mutated certificate accepted"

    run_cases(prop)


def test_header_single_byte_mutations_rejected(world):
    header = world["tip"].block.header
    encoded = wire.encode(header)

    def prop(rng):
        mutated = mutate_one_byte(encoded, rng)
        try:
            corrupted = wire.decode(mutated)
        except ReproError:
            return
        if corrupted == header:
            return
        try:
            accepted = _fresh_client(world).validate_chain(
                corrupted, world["tip"].certificate
            )
        except (ReproError, AttributeError, TypeError):
            # Not even header-shaped any more, or verifiably wrong.
            return
        assert not accepted, "certificate accepted a mutated header"

    run_cases(prop)


def test_index_certificate_single_byte_mutations_rejected(world):
    tip = world["tip"]
    original = tip.index_certificates["history"]
    encoded = original.encode()

    def prop(rng):
        mutated = mutate_one_byte(encoded, rng)
        try:
            corrupted = Certificate.decode(mutated)
        except ReproError:
            return
        if corrupted == original:
            return
        client = _fresh_client(world)
        client.validate_chain(tip.block.header, tip.certificate)
        try:
            accepted = client.validate_index_certificate(
                "history", tip.block.header,
                tip.index_roots["history"], corrupted,
            )
        except ReproError:
            return
        assert not accepted, "mutated index certificate accepted"

    run_cases(prop)


def test_query_answer_single_byte_mutations_rejected(world):
    """Covers the Merkle proofs: the answer payload embeds the MPT and
    MB-tree proofs, so byte flips land in proof material most of the
    time and must fail root verification."""
    request, answer = world["request"], world["answer"]
    encoded = wire.encode(answer)
    client = world["client"]  # read-only verification, safe to share

    def prop(rng):
        mutated = mutate_one_byte(encoded, rng)
        try:
            corrupted = wire.decode(mutated)
        except ReproError:
            return
        if corrupted == answer:
            return
        try:
            accepted = client.verify_answer(
                request, QueryAnswer(request=request, payload=corrupted)
            )
        except (ReproError, AttributeError, TypeError):
            return
        assert not accepted, "mutated query answer verified"

    run_cases(prop)
