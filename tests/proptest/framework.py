"""A tiny dependency-free property-testing harness.

Unlike ``tests/property/`` (which uses Hypothesis), this framework is
pure ``random.Random`` so it can run anywhere the library runs and its
failures replay *exactly* from a printed seed:

* :func:`run_cases` runs a property against ``REPRO_PROPTEST_CASES``
  independently seeded RNGs (default :data:`DEFAULT_CASES`); on the
  first failure it raises an AssertionError whose message contains the
  failing case seed and a copy-pasteable replay command.
* ``REPRO_PROPTEST_REPLAY=<case-seed>`` replays exactly that one case
  — deterministic shrink-by-replay: rerun the printed command, drop
  into a debugger, bisect the property body, all on one fixed input.
* :func:`run_sized_cases` adds size-directed shrinking for properties
  parameterized by a size: when a case fails, it replays the same case
  seed at every smaller size and reports the *minimal* failing size.
* :func:`mutate_one_byte` is the shared single-byte-mutation generator
  the forgery properties build on.

All randomness flows through the per-case ``random.Random(case_seed)``
— properties must not consult any other entropy source, or replay
breaks.
"""

from __future__ import annotations

import os
import random
from typing import Callable

#: Fixed default seed: the suite is deterministic run over run unless
#: REPRO_PROPTEST_SEED overrides the base seed.
DEFAULT_SEED = 0xDCE27
#: Cases per property (the `make proptest` default).
DEFAULT_CASES = 25


def case_count(default: int = DEFAULT_CASES) -> int:
    return int(os.environ.get("REPRO_PROPTEST_CASES", default))


def base_seed() -> int:
    return int(os.environ.get("REPRO_PROPTEST_SEED", DEFAULT_SEED))


def _case_seed(base: int, index: int) -> int:
    # Splits the base seed into well-separated per-case seeds (an LCG
    # step, not security-relevant — just avoids overlapping streams).
    return (base * 6364136223846793005 + index * 1442695040888963407) % (2**63)


def _replay_command(case_seed: int) -> str:
    return (
        f"REPRO_PROPTEST_REPLAY={case_seed} "
        "PYTHONPATH=src python -m pytest tests/proptest -q"
    )


def run_cases(
    prop: Callable[[random.Random], None],
    *,
    cases: int | None = None,
    seed: int | None = None,
) -> None:
    """Run ``prop(rng)`` for many independently seeded cases.

    A property passes by returning and fails by raising (assert inside
    it).  The failure message names the case seed and the exact command
    that replays only that case.
    """
    replay = os.environ.get("REPRO_PROPTEST_REPLAY")
    if replay is not None:
        case_seed = int(replay)
        prop(random.Random(case_seed))
        return
    base = seed if seed is not None else base_seed()
    for index in range(cases if cases is not None else case_count()):
        case_seed = _case_seed(base, index)
        try:
            prop(random.Random(case_seed))
        except Exception as exc:
            raise AssertionError(
                f"property {prop.__name__!r} failed on case {index} "
                f"(seed {case_seed}): {exc}\n"
                f"replay just this case with:\n  {_replay_command(case_seed)}"
            ) from exc


def run_sized_cases(
    prop: Callable[[random.Random, int], None],
    *,
    max_size: int,
    min_size: int = 1,
    cases: int | None = None,
    seed: int | None = None,
) -> None:
    """Like :func:`run_cases` for ``prop(rng, size)``: each case draws a
    size in ``[min_size, max_size]``; on failure the same case seed is
    replayed at every smaller size (fresh RNG each time, so the input
    derivation is identical) and the minimal failing size is reported."""
    replay = os.environ.get("REPRO_PROPTEST_REPLAY")
    if replay is not None:
        case_seed = int(replay)
        size = random.Random(case_seed).randint(min_size, max_size)
        prop(random.Random(case_seed), size)
        return
    base = seed if seed is not None else base_seed()
    for index in range(cases if cases is not None else case_count()):
        case_seed = _case_seed(base, index)
        size = random.Random(case_seed).randint(min_size, max_size)
        try:
            prop(random.Random(case_seed), size)
        except Exception as exc:
            shrunk_size, shrunk_exc = size, exc
            for smaller in range(min_size, size):
                try:
                    prop(random.Random(case_seed), smaller)
                except Exception as smaller_exc:
                    shrunk_size, shrunk_exc = smaller, smaller_exc
                    break
            raise AssertionError(
                f"property {prop.__name__!r} failed on case {index} "
                f"(seed {case_seed}), minimal failing size "
                f"{shrunk_size}: {shrunk_exc}\n"
                f"replay just this case with:\n  {_replay_command(case_seed)}"
            ) from shrunk_exc


def mutate_one_byte(data: bytes, rng: random.Random) -> bytes:
    """Flip one random byte of ``data`` to a different value."""
    assert data, "cannot mutate empty bytes"
    position = rng.randrange(len(data))
    flip = rng.randint(1, 255)
    mutated = bytearray(data)
    mutated[position] ^= flip
    return bytes(mutated)
