"""Forged push announcements: single-byte mutations never move a tip.

The push stream's security argument is that the hub is untrusted
plumbing: a :class:`~repro.net.messages.PushEnvelope` carries the
canonical wire encoding of a :class:`~repro.net.pubsub.TipAnnouncement`
and the subscriber re-verifies every certificate inside before any
client state moves.  These properties deliver single-byte mutations of
a genuine envelope payload straight into the client's push handler and
assert the client never ends up in a state the forger controls:

* the adopted tip is only ever the genuine certified next header (a
  mutation that leaves the certified material intact — e.g. a flip in
  the publish timestamp — still carries the enclave's own statement);
* every index root the client holds afterwards is one the enclave
  certified;
* a payload that fails verification is rejected *atomically*: counted
  in ``push_rejected``, not acked, and the client state is
  byte-identical to before.

Seeds and replay: see tests/proptest/framework.py.
"""

from __future__ import annotations

import pytest

from repro.core import ClientConfig, IssuerService, connect
from repro.net.bus import MessageBus
from repro.net.messages import PushEnvelope
from repro.net.pubsub import SubscriptionHub, TipAnnouncement
from repro.net import wire
from tests.proptest.framework import mutate_one_byte, run_cases


@pytest.fixture(scope="module")
def world(certified_setup):
    """The certified kv_chain issuer behind a hub endpoint, plus the
    genuine announcement for the tip a probe client has not seen."""
    issuer = certified_setup["issuer"]
    bus = MessageBus()
    service = IssuerService(bus, "ci", issuer)
    hub = SubscriptionHub.embedded(service)
    # The probe sits at the second-to-last certified block (seq N-1);
    # the genuine announcement under test carries the last one (seq N).
    seq = len(issuer.certified)
    tip = issuer.certified[-1]
    announcement = TipAnnouncement(
        seq=seq,
        published_at_ms=0.0,
        header=tip.block.header,
        certificate=tip.certificate,
        index_certificates=dict(tip.index_certificates),
        index_roots=dict(tip.index_roots),
    )
    certified_roots = {
        root
        for certified in issuer.certified
        for root in certified.index_roots.values()
    }
    return {
        "bus": bus,
        "hub": hub,
        "issuer": issuer,
        "setup": certified_setup,
        "seq": seq,
        "announcement": announcement,
        "payload": wire.encode(announcement),
        "certified_roots": certified_roots,
    }


def _make_probe(world, rng, prefix):
    """A fresh subscribed-at-seq-N-1 client (never reused across cases:
    a rejected forgery must not poison later cases' state)."""
    setup = world["setup"]
    issuer = world["issuer"]
    probe = connect(ClientConfig(
        measurement=issuer.measurement,
        ias_public_key=setup["ias"].public_key,
        bus=world["bus"],
        name=f"{prefix}-{rng.randrange(1 << 48):012x}",
        issuers=("ci",),
        hub="ci",
    ))
    prev = issuer.certified[-2]
    probe.client.validate_chain(prev.block.header, prev.certificate)
    for name, cert in prev.index_certificates.items():
        probe.client.validate_index_certificate(
            name, prev.block.header, prev.index_roots[name], cert
        )
    probe.subscribed = True
    probe._sub_seq = world["seq"] - 1
    return probe


def _forges_certified_material(candidate, genuine) -> bool:
    """True when the mutation tampered with an enclave-signed statement.

    Flips that survive verification are the ones that forge nothing:
    the seq, the timestamp, an index *name* (the digest binds header
    and root, not the label), or an *omitted* entry (the client can
    only verify what is present; omission degrades freshness, it
    installs nothing forged).  Everything else must be rejected."""
    if (
        candidate.header != genuine.header
        or candidate.certificate != genuine.certificate
    ):
        return True
    genuine_certs = {c.encode() for c in genuine.index_certificates.values()}
    genuine_roots = set(genuine.index_roots.values())
    candidate_certs = {
        c.encode() for c in candidate.index_certificates.values()
    }
    candidate_roots = set(candidate.index_roots.values())
    return not (
        candidate_certs <= genuine_certs and candidate_roots <= genuine_roots
    )


def test_mutated_announcements_never_move_a_tip_unverified(world):
    genuine = world["announcement"]
    payload = world["payload"]
    prev_header = world["issuer"].certified[-2].block.header

    def prop(rng):
        mutated = mutate_one_byte(payload, rng)
        probe = _make_probe(world, rng, "tipprobe")
        before_state = probe.client.to_json()
        probe._on_push(PushEnvelope(payload=mutated))

        # The tip is only ever where it was, or at the genuine header.
        assert probe.latest_header in (prev_header, genuine.header), (
            "a mutated announcement installed a forged tip"
        )
        if probe.latest_header == genuine.header:
            assert probe.client.latest_certificate == genuine.certificate
        # Index roots are always enclave-certified ones.
        for _height, root in probe.client._index_roots.values():
            assert root in world["certified_roots"], (
                "a mutated announcement installed an uncertified index root"
            )
        # Rejections are atomic and counted.
        if probe.push_rejected:
            assert probe.client.to_json() == before_state, (
                "a rejected announcement left client state behind"
            )
            assert probe._sub_seq == world["seq"] - 1
        # Whatever happened, the stream either did not move or moved to
        # exactly the genuine position — never past it.
        assert probe._sub_seq in (world["seq"] - 1, world["seq"])

    run_cases(prop)


def test_mutations_of_certified_material_are_rejected_and_counted(world):
    """The sharper half: when the flip *does* land in enclave-signed
    material (and still decodes, at the genuine seq), the client must
    reject it, count it, and withhold the ack."""
    genuine = world["announcement"]
    payload = world["payload"]

    def prop(rng):
        mutated = mutate_one_byte(payload, rng)
        try:
            candidate = wire.decode(mutated)
        except Exception:
            candidate = None
        interesting = (
            isinstance(candidate, TipAnnouncement)
            and candidate.seq == genuine.seq
            and _forges_certified_material(candidate, genuine)
        )
        probe = _make_probe(world, rng, "certprobe")
        # Drain leftovers from earlier cases so the ack count is ours.
        probe.rpc.bus.run_until_idle()
        hub_node = world["hub"].server.node
        acks_before = hub_node.delivered_count
        probe._on_push(PushEnvelope(payload=mutated))
        if not interesting:
            return
        assert probe.push_rejected == 1, "forged certified material accepted"
        assert probe.push_adopted == 0
        assert probe.latest_header.height == genuine.header.height - 1
        # No ack went out: the hub will retransmit the genuine one.
        probe.rpc.bus.run_until_idle()
        assert hub_node.delivered_count == acks_before

    run_cases(prop)
