"""Batch-issuance invariants over random chains, splits, and caches.

The differential suite (tests/core/test_batch_differential.py) pins a
handful of chosen chains and batch splits; these properties draw them
at random: for *any* seeded chain, *any* random partition of it into
batches, and *any* proof-cache capacity (including 0 = disabled), the
batched path must produce byte-identical certificates to the
sequential path.  The chain length is the property's *size*, so a
failure shrinks by replaying the same case seed at shorter chains
(see run_sized_cases) and reports the minimal failing length.

Also here: the Merkle-proof leg of the forgery properties — a single
byte flipped anywhere in an SMT proof's wire encoding must make
verification fail against the original root.
"""

from __future__ import annotations

from repro.crypto.hashing import sha256
from repro.errors import ReproError
from repro.net import wire
from repro.merkle.smt import SparseMerkleTree, verify_proof
from tests.core.test_batch_differential import (
    assert_identical,
    make_issuer,
    random_chain,
)
from tests.proptest.framework import mutate_one_byte, run_cases, run_sized_cases


def test_random_batch_splits_match_sequential():
    """Any random batch partition + cache capacity == sequential."""

    def prop(rng, size):
        chain_seed = rng.randrange(2**32)
        builder = random_chain(chain_seed, blocks=size, difficulty_bits=1)
        blocks = builder.blocks[1:]

        sequential = make_issuer(builder, chain_seed)
        for block in blocks:
            sequential.process_block(block)

        cache = rng.choice((0, 2, 8, 64))
        batched = make_issuer(builder, chain_seed, cache=cache)
        cursor = 0
        while cursor < len(blocks):
            take = rng.randint(1, len(blocks) - cursor)
            batched.issue_batch(blocks[cursor:cursor + take])
            cursor += take

        assert_identical(sequential, batched)

    run_sized_cases(prop, min_size=2, max_size=8)


def test_interleaved_sequential_and_batched_match():
    """Randomly interleaving process_block with issue_batch still ends
    in the same client-visible state (the enclave must re-anchor and
    drop its carried slice whenever the sequential path intervenes)."""

    def prop(rng, size):
        chain_seed = rng.randrange(2**32)
        builder = random_chain(chain_seed, blocks=size, difficulty_bits=1)
        blocks = builder.blocks[1:]

        sequential = make_issuer(builder, chain_seed)
        for block in blocks:
            sequential.process_block(block)

        mixed = make_issuer(builder, chain_seed, cache=16)
        cursor = 0
        while cursor < len(blocks):
            take = rng.randint(1, len(blocks) - cursor)
            if rng.random() < 0.5:
                for block in blocks[cursor:cursor + take]:
                    mixed.process_block(block)
            else:
                mixed.issue_batch(blocks[cursor:cursor + take])
            cursor += take

        assert_identical(sequential, mixed)

    run_sized_cases(prop, min_size=2, max_size=8, cases=10)


def _proof_fixture():
    tree = SparseMerkleTree(depth=32)
    items = {sha256(f"key{i}".encode()): f"value{i}".encode() for i in range(8)}
    for key, value in items.items():
        tree.update(key, value)
    key = sha256(b"key3")
    return tree.root, key, items[key], tree.prove(key)


def test_smt_proof_single_byte_mutations_rejected():
    root, key, value, proof = _proof_fixture()
    encoded = wire.encode(proof)

    def prop(rng):
        mutated = mutate_one_byte(encoded, rng)
        try:
            corrupted = wire.decode(mutated)
        except ReproError:
            return  # rejected at the parse boundary
        if corrupted == proof:
            return  # same meaning, not a forgery
        try:
            accepted = verify_proof(root, key, value, corrupted)
        except (ReproError, AttributeError, TypeError, IndexError):
            return  # malformed proof structure detected
        assert not accepted, "mutated SMT proof verified against the root"

    run_cases(prop)


def test_smt_proof_wrong_value_rejected():
    """The same proof must not vouch for any other value (or for
    non-membership) under the same root."""
    root, key, value, proof = _proof_fixture()

    def prop(rng):
        wrong = bytes(rng.randrange(256) for _ in range(rng.randint(0, 8)))
        if wrong == value:
            return
        assert not verify_proof(root, key, wrong, proof)
        assert not verify_proof(root, key, None, proof)

    run_cases(prop)
