"""Forged resilience wire fields: hostile deadlines and retry hints.

The overload machinery added two attacker-controllable fields to the
RPC envelopes: ``RpcRequest.deadline_ms`` and
``RpcResponse.retry_after_ms`` (plus the typed ``code``).  Neither is
certified material — verification of *answers* is covered by
``test_prop_mutations.py`` — so the properties here pin down the only
powers a forger gains from them:

* a forged **deadline** can make a server refuse work (its purpose),
  but never crashes the server, never produces a wrong reply, and
  refused requests do zero handler work;
* a forged **retry_after** hint can delay one retry by at most the
  clamp cap, never stall a client or park a circuit breaker forever;
* a **single-byte mutation** of a wire-encoded response envelope —
  which can land in ``ok``, ``code``, or ``retry_after_ms`` just as
  well as in the payload — leaves the calling client in a bounded
  state: it returns, or raises a typed taxonomy error, within a
  virtual-time budget that the forged fields cannot extend.

Seeds and replay: see tests/proptest/framework.py.
"""

from __future__ import annotations

import math

from repro.errors import ReproError
from repro.net import wire
from repro.net.bus import MessageBus, NetworkNode
from repro.net.resilience import (
    RETRY_AFTER_CAP_MS,
    CircuitBreaker,
    CircuitBreakerPolicy,
    clamp_retry_after,
    sanitize_deadline,
)
from repro.net.rpc import (
    RetryPolicy,
    RpcClient,
    RpcRequest,
    RpcResponse,
    RpcServer,
    rpc_topic,
)
from tests.proptest.framework import mutate_one_byte, run_cases


def _hostile_number(rng):
    """A value an attacker might plant in a numeric wire field."""
    return rng.choice([
        rng.uniform(-1e6, 1e6),
        rng.uniform(0.0, 1e18),
        -rng.uniform(0.0, 1e18),
        float("nan"),
        float("inf"),
        float("-inf"),
        0.0,
        -0.0,
        rng.randrange(-(2**63), 2**63),
        True,
        False,
        "soon",
        None,
    ])


def test_sanitize_and_clamp_bound_any_hostile_value():
    def prop(rng):
        value = _hostile_number(rng)
        deadline = sanitize_deadline(value)
        assert isinstance(deadline, float) and math.isfinite(deadline)
        assert deadline >= 0.0
        hint = clamp_retry_after(value)
        assert isinstance(hint, float) and math.isfinite(hint)
        assert 0.0 <= hint <= RETRY_AFTER_CAP_MS

    run_cases(prop)


def test_forged_deadline_only_refuses_never_wrong_answer():
    """Whatever rides in ``deadline_ms``, the server either serves the
    genuine echo or refuses with the typed ``net.deadline`` code — and
    a refusal never invokes the handler."""

    def prop(rng):
        bus = MessageBus(default_latency_ms=5.0)
        served = []
        server = RpcServer(bus, "server", service_time_ms=20.0)
        server.register(
            "echo", lambda argument: served.append(argument) or argument
        )
        client = RpcClient(bus, "client", RetryPolicy(max_attempts=1))
        bus.run_for(rng.uniform(0.0, 500.0))  # the clock an expiry races
        argument = rng.randrange(1_000_000)
        request_id = client._send(
            "server", "echo", wire.encode(argument),
            deadline_ms=_hostile_number(rng),
        )
        bus.run_until_idle()
        response = client.take(request_id)
        assert response is not None, "forged deadline suppressed the reply"
        if response.ok:
            assert wire.decode(response.payload) == argument
            assert served == [argument]
        else:
            assert response.code == "net.deadline"
            assert served == []  # refusal cost zero handler work
            assert server.invocations.get("echo", 0) == 0

    run_cases(prop)


def test_forged_retry_after_delays_one_retry_at_most_the_cap():
    """An adversarial endpoint sheds every call with a hostile hint;
    the caller's total virtual-time spend stays bounded by the clamp
    cap plus its own per-attempt budget — no forged value stalls it."""

    def prop(rng):
        bus = MessageBus(default_latency_ms=5.0)
        bus.join(NetworkNode("evil", record_limit=0))
        hint = _hostile_number(rng)

        def shed(message):
            if not isinstance(message, RpcRequest):
                return
            bus.send(
                "evil", message.sender, rpc_topic(message.sender),
                RpcResponse(
                    request_id=message.request_id, sender="evil", ok=False,
                    payload=wire.encode("shed"), code="net.overloaded",
                    retry_after_ms=hint,
                ),
            )

        bus._nodes["evil"].on(rpc_topic("evil"), shed)
        attempts = rng.randint(1, 3)
        policy = RetryPolicy(
            timeout_ms=50.0, max_attempts=attempts, backoff_base_ms=1.0
        )
        client = RpcClient(bus, "client", policy)
        started = bus.clock_ms
        try:
            client.call("evil", "work")
            raise AssertionError("an all-shedding endpoint answered ok")
        except ReproError:
            pass
        elapsed = bus.clock_ms - started
        budget = attempts * (50.0 + 2 * 5.0) + (attempts - 1) * RETRY_AFTER_CAP_MS
        assert elapsed <= budget, (
            f"forged retry_after {hint!r} stalled the client {elapsed:.0f} ms"
        )

    run_cases(prop)


def test_forged_retry_after_cannot_park_a_breaker():
    def prop(rng):
        policy = CircuitBreakerPolicy(failure_trip=1)
        breaker = CircuitBreaker(policy, seed=str(rng.random()))
        now = rng.uniform(0.0, 1e6)
        breaker.record_failure(now, retry_after_ms=_hostile_number(rng))
        assert breaker.state == CircuitBreaker.OPEN
        ceiling = max(
            policy.open_max_ms * (1.0 + policy.jitter), RETRY_AFTER_CAP_MS
        )
        assert now < breaker.reopen_at_ms <= now + ceiling

    run_cases(prop)


def test_response_envelope_single_byte_mutations_stay_bounded():
    """Flip one byte of a wire-encoded response envelope — hitting
    ``ok``/``code``/``retry_after_ms`` as readily as the payload — and
    hand the result to a live caller: the call must finish (value or
    typed error) within a budget the mutation cannot extend."""
    genuine = RpcResponse(
        request_id=1, sender="server", ok=False,
        payload=wire.encode("busy"), code="net.overloaded",
        retry_after_ms=35.0,
    )
    encoded = wire.encode(genuine)

    def prop(rng):
        mutated = mutate_one_byte(encoded, rng)
        try:
            corrupted = wire.decode(mutated)
        except ReproError:
            return  # rejected at the parse boundary
        if not isinstance(corrupted, RpcResponse):
            return
        bus = MessageBus(default_latency_ms=5.0)
        bus.join(NetworkNode("server", record_limit=0))

        def reply(message):
            if not isinstance(message, RpcRequest):
                return
            bus.send(
                "server", message.sender, rpc_topic(message.sender),
                # The forged envelope answers whatever id the client
                # used (a mutated request_id would just be a late
                # duplicate, which the client already drops).
                type(corrupted)(
                    request_id=message.request_id, sender=corrupted.sender,
                    ok=corrupted.ok, payload=corrupted.payload,
                    code=corrupted.code,
                    retry_after_ms=corrupted.retry_after_ms,
                ),
            )

        bus._nodes["server"].on(rpc_topic("server"), reply)
        policy = RetryPolicy(
            timeout_ms=50.0, max_attempts=2, backoff_base_ms=1.0
        )
        client = RpcClient(bus, "client", policy)
        started = bus.clock_ms
        try:
            client.call("server", "work")
        except ReproError:
            pass  # typed taxonomy error: the safe outcome
        elapsed = bus.clock_ms - started
        budget = 2 * (50.0 + 2 * 5.0) + RETRY_AFTER_CAP_MS
        assert elapsed <= budget, (
            f"mutated envelope stalled the client {elapsed:.0f} ms"
        )

    run_cases(prop)
