"""Chain archive: durable WAL framing, torn tails, tamper-checked restore."""

import json

import pytest

from repro.chain.block import decode_block, encode_block
from repro.chain.genesis import make_genesis
from repro.core.issuer import CertificateIssuer
from repro.errors import (
    ArchiveCorruptionError,
    ArchiveFormatError,
    BlockValidationError,
    StorageError,
)
from repro.sgx.attestation import AttestationService
from repro.sgx.platform import SGXPlatform
from repro.storage import ChainArchive, WriteAheadLog, _frame, restore_issuer
from tests.conftest import fresh_vm


def read_payloads(path):
    """Every framed payload, without repairing the file."""
    return WriteAheadLog(path).read(repair=False)[0]


def write_payloads(path, payloads):
    """Rewrite the WAL from whole-record payloads (correct framing)."""
    path.write_bytes(WriteAheadLog.MAGIC + b"".join(_frame(p) for p in payloads))


def edit_record(path, position, mutate):
    """Decode record ``position``, apply ``mutate`` to the JSON object,
    re-frame with a *valid* CRC — tampering the content, not the frame."""
    payloads = read_payloads(path)
    record = json.loads(payloads[position])
    mutate(record)
    payloads[position] = json.dumps(record, sort_keys=True).encode("utf-8")
    write_payloads(path, payloads)


def test_block_wire_roundtrip(kv_chain):
    block = kv_chain.blocks[2]
    decoded = decode_block(encode_block(block))
    assert decoded.block_hash() == block.block_hash()
    assert decoded.check_tx_root()


def test_block_decode_rejects_garbage():
    with pytest.raises(BlockValidationError):
        decode_block(b"nonsense")
    with pytest.raises(BlockValidationError):
        decode_block(b"{}")


@pytest.fixture()
def archived_world(kv_chain, tmp_path):
    ias = AttestationService(seed=b"archive-ias")
    platform = SGXPlatform(seed=b"archive-platform")
    genesis, state = make_genesis()
    issuer = CertificateIssuer(
        genesis, state, fresh_vm(), kv_chain.pow,
        ias=ias, platform=platform, key_seed=b"archive-key",
    )
    archive = ChainArchive(tmp_path / "chain.wal")
    archive.initialize(issuer.seal_signing_key())
    for block in kv_chain.blocks[1:6]:
        certified = issuer.process_block(block)
        archive.append(block, certified.certificate)
    return {
        "issuer": issuer,
        "archive": archive,
        "ias": ias,
        "platform": platform,
        "chain": kv_chain,
    }


def test_restore_reproduces_issuer(archived_world, kv_chain):
    genesis, state = make_genesis()
    restored = restore_issuer(
        archived_world["archive"], genesis, state, fresh_vm(), kv_chain.pow,
        platform=archived_world["platform"], ias=archived_world["ias"],
    )
    original = archived_world["issuer"]
    assert restored.pk_enc == original.pk_enc
    assert restored.node.height == original.node.height
    assert restored.node.state.root == original.node.state.root
    assert (
        restored.latest_certificate.encode()
        == original.latest_certificate.encode()
    )


def test_restored_issuer_continues_certifying(archived_world, kv_chain):
    genesis, state = make_genesis()
    restored = restore_issuer(
        archived_world["archive"], genesis, state, fresh_vm(), kv_chain.pow,
        platform=archived_world["platform"], ias=archived_world["ias"],
    )
    certified = restored.process_block(kv_chain.blocks[6])
    assert certified.certificate is not None


def test_tampered_certificate_rejected_on_restore(archived_world, kv_chain):
    def tamper(record):
        cert = json.loads(record["certificate"])
        cert["dig"] = "00" * 32
        record["certificate"] = json.dumps(cert, sort_keys=True)

    edit_record(archived_world["archive"].path, -1, tamper)
    genesis, state = make_genesis()
    with pytest.raises(ArchiveCorruptionError):
        restore_issuer(
            archived_world["archive"], genesis, state, fresh_vm(), kv_chain.pow,
            platform=archived_world["platform"], ias=archived_world["ias"],
        )


def test_tampered_block_rejected_on_restore(archived_world, kv_chain):
    def tamper(record):
        block = json.loads(record["block"])
        header = json.loads(block["header"])
        header["ts"] = header["ts"] + 1
        block["header"] = json.dumps(header, sort_keys=True)
        record["block"] = json.dumps(block, sort_keys=True)

    edit_record(archived_world["archive"].path, 2, tamper)
    genesis, state = make_genesis()
    with pytest.raises(BlockValidationError):
        restore_issuer(
            archived_world["archive"], genesis, state, fresh_vm(), kv_chain.pow,
            platform=archived_world["platform"], ias=archived_world["ias"],
        )


def test_restore_on_wrong_platform_fails(archived_world, kv_chain):
    from repro.errors import EnclaveError

    genesis, state = make_genesis()
    with pytest.raises(EnclaveError):
        restore_issuer(
            archived_world["archive"], genesis, state, fresh_vm(), kv_chain.pow,
            platform=SGXPlatform(seed=b"thief"), ias=archived_world["ias"],
        )


def test_restore_with_index_specs(kv_chain, tmp_path):
    """Index certificates are re-derived during replay; the restored CI
    reaches the same certified index roots."""
    from repro.query.indexes import AccountHistoryIndexSpec, KeywordIndexSpec

    specs = [AccountHistoryIndexSpec(name="history"), KeywordIndexSpec(name="keyword")]
    ias = AttestationService(seed=b"archive-idx-ias")
    platform = SGXPlatform(seed=b"archive-idx-platform")
    genesis, state = make_genesis()
    issuer = CertificateIssuer(
        genesis, state, fresh_vm(), kv_chain.pow,
        index_specs=specs, ias=ias, platform=platform, key_seed=b"archive-idx",
    )
    archive = ChainArchive(tmp_path / "idx.wal")
    archive.initialize(issuer.seal_signing_key())
    for block in kv_chain.blocks[1:5]:
        certified = issuer.process_block(block)
        archive.append_record(
            block,
            certified.certificate,
            index_certificates=certified.index_certificates,
            index_roots=certified.index_roots,
            write_set=certified.write_set,
        )

    genesis2, state2 = make_genesis()
    restored = restore_issuer(
        archive, genesis2, state2, fresh_vm(), kv_chain.pow,
        index_specs=specs, platform=platform, ias=ias,
    )
    for name in ("history", "keyword"):
        assert restored.index_root(name) == issuer.index_root(name)
        assert (
            restored.index_certificate(name).encode()
            == issuer.index_certificate(name).encode()
        )


# -- WAL framing: torn tails vs corruption -----------------------------------


def test_torn_final_record_truncated_on_load(archived_world):
    """A crash mid-append leaves a partial final frame; load() repairs
    by truncation instead of dying in json.loads (the old failure)."""
    archive = archived_world["archive"]
    path = archive.path
    payloads = read_payloads(path)
    whole = path.read_bytes()
    torn = _frame(payloads[-1])[: len(_frame(payloads[-1])) // 2]
    path.write_bytes(whole + torn)

    contents = archive.load()
    assert contents.torn_bytes_dropped == len(torn)
    assert len(contents.entries) == len(payloads) - 1  # head + blocks
    # The file was repaired in place: a second load sees a clean WAL.
    assert archive.load().torn_bytes_dropped == 0
    assert path.read_bytes() == whole


@pytest.mark.parametrize("cut", [1, 3, 7])
def test_torn_tail_regression_byte_level(archived_world, cut):
    """Byte-level torn-write fixture: any partial suffix of a frame —
    even shorter than the 8-byte header — is a torn tail, not an error."""
    path = archived_world["archive"].path
    whole = path.read_bytes()
    path.write_bytes(whole + _frame(b'{"kind":"staged"}')[:cut])
    contents = archived_world["archive"].load()
    assert contents.torn_bytes_dropped == cut
    assert path.read_bytes() == whole


def test_mid_file_corruption_is_typed_error(archived_world):
    """Flipping payload bytes *without* fixing the CRC is corruption,
    not a torn tail — surfaced as ArchiveCorruptionError."""
    path = archived_world["archive"].path
    data = bytearray(path.read_bytes())
    # Flip a byte well inside the first record's payload.
    offset = len(WriteAheadLog.MAGIC) + 8 + 4
    data[offset] ^= 0xFF
    path.write_bytes(bytes(data))
    with pytest.raises(ArchiveCorruptionError):
        archived_world["archive"].load()


def test_undecodable_record_is_typed_error(archived_world):
    """A validly framed record that is not JSON raises a typed
    StorageError — never a bare JSONDecodeError."""
    path = archived_world["archive"].path
    payloads = read_payloads(path)
    payloads[1] = b"\xff\xfenot json"
    write_payloads(path, payloads)
    with pytest.raises(StorageError):
        archived_world["archive"].load()


def test_bad_magic_rejected(tmp_path):
    path = tmp_path / "bogus.wal"
    path.write_bytes(b"NOTAWAL\n" + _frame(b"{}"))
    with pytest.raises(ArchiveFormatError):
        ChainArchive(path).load()


def test_missing_archive_rejected(tmp_path):
    with pytest.raises(ArchiveFormatError):
        ChainArchive(tmp_path / "absent.wal").load()


# -- head-record contract: first, exactly once -------------------------------


def test_missing_head_record_rejected(tmp_path):
    archive = ChainArchive(tmp_path / "empty.wal")
    archive.path.write_bytes(WriteAheadLog.MAGIC)
    with pytest.raises(ArchiveFormatError, match="no head record"):
        archive.load()


def test_head_record_must_be_first(archived_world):
    path = archived_world["archive"].path
    payloads = read_payloads(path)
    head, rest = payloads[0], payloads[1:]
    write_payloads(path, [rest[0], head, *rest[1:]])
    with pytest.raises(ArchiveFormatError):
        archived_world["archive"].load()


def test_duplicate_head_record_rejected(archived_world):
    path = archived_world["archive"].path
    payloads = read_payloads(path)
    write_payloads(path, [payloads[0], payloads[0], *payloads[1:]])
    with pytest.raises(ArchiveFormatError, match="head record"):
        archived_world["archive"].load()


def test_head_record_after_blocks_rejected(archived_world):
    path = archived_world["archive"].path
    payloads = read_payloads(path)
    write_payloads(path, [*payloads, payloads[0]])
    with pytest.raises(ArchiveFormatError):
        archived_world["archive"].load()


def test_nonconsecutive_heights_rejected(archived_world):
    path = archived_world["archive"].path
    payloads = read_payloads(path)
    del payloads[2]  # drop the block at height 2
    write_payloads(path, payloads)
    with pytest.raises(ArchiveFormatError, match="height"):
        archived_world["archive"].load()


def test_unknown_record_kind_rejected(archived_world):
    path = archived_world["archive"].path
    payloads = read_payloads(path)
    payloads.append(json.dumps({"kind": "mystery"}).encode("utf-8"))
    write_payloads(path, payloads)
    with pytest.raises(ArchiveFormatError, match="mystery"):
        archived_world["archive"].load()


# -- checkpoint sidecar -------------------------------------------------------


def test_checkpoint_sidecar_roundtrip(archived_world):
    archive = archived_world["archive"]
    assert archive.read_checkpoint() is None
    archive.write_checkpoint(5, b"sealed-bytes")
    assert archive.read_checkpoint() == (5, b"sealed-bytes")
    archive.write_checkpoint(7, b"newer")
    assert archive.read_checkpoint() == (7, b"newer")


def test_malformed_checkpoint_sidecar_rejected(archived_world):
    archive = archived_world["archive"]
    archive.checkpoint_path.write_bytes(b"garbage")
    with pytest.raises(ArchiveCorruptionError):
        archive.read_checkpoint()


def test_initialize_clears_stale_checkpoint(archived_world):
    archive = archived_world["archive"]
    archive.write_checkpoint(5, b"sealed")
    archive.initialize(b"new-sealed-key")
    assert archive.read_checkpoint() is None
    contents = archive.load()
    assert contents.sealed_key == b"new-sealed-key"
    assert contents.entries == []
