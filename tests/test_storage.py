"""Chain archive: persistence and tamper-checked restore."""

import json

import pytest

from repro.chain.block import decode_block, encode_block
from repro.chain.genesis import make_genesis
from repro.core.issuer import CertificateIssuer
from repro.errors import BlockValidationError, CertificateError
from repro.sgx.attestation import AttestationService
from repro.sgx.platform import SGXPlatform
from repro.storage import ChainArchive, restore_issuer
from tests.conftest import fresh_vm


def test_block_wire_roundtrip(kv_chain):
    block = kv_chain.blocks[2]
    decoded = decode_block(encode_block(block))
    assert decoded.block_hash() == block.block_hash()
    assert decoded.check_tx_root()


def test_block_decode_rejects_garbage():
    with pytest.raises(BlockValidationError):
        decode_block(b"nonsense")
    with pytest.raises(BlockValidationError):
        decode_block(b"{}")


@pytest.fixture()
def archived_world(kv_chain, tmp_path):
    ias = AttestationService(seed=b"archive-ias")
    platform = SGXPlatform(seed=b"archive-platform")
    genesis, state = make_genesis()
    issuer = CertificateIssuer(
        genesis, state, fresh_vm(), kv_chain.pow,
        ias=ias, platform=platform, key_seed=b"archive-key",
    )
    archive = ChainArchive(tmp_path / "chain.jsonl")
    archive.initialize(issuer.seal_signing_key())
    for block in kv_chain.blocks[1:6]:
        certified = issuer.process_block(block)
        archive.append(block, certified.certificate)
    return {
        "issuer": issuer,
        "archive": archive,
        "ias": ias,
        "platform": platform,
        "chain": kv_chain,
    }


def test_restore_reproduces_issuer(archived_world, kv_chain):
    genesis, state = make_genesis()
    restored = restore_issuer(
        archived_world["archive"], genesis, state, fresh_vm(), kv_chain.pow,
        platform=archived_world["platform"], ias=archived_world["ias"],
    )
    original = archived_world["issuer"]
    assert restored.pk_enc == original.pk_enc
    assert restored.node.height == original.node.height
    assert restored.node.state.root == original.node.state.root
    assert (
        restored.latest_certificate.encode()
        == original.latest_certificate.encode()
    )


def test_restored_issuer_continues_certifying(archived_world, kv_chain):
    genesis, state = make_genesis()
    restored = restore_issuer(
        archived_world["archive"], genesis, state, fresh_vm(), kv_chain.pow,
        platform=archived_world["platform"], ias=archived_world["ias"],
    )
    certified = restored.process_block(kv_chain.blocks[6])
    assert certified.certificate is not None


def test_tampered_certificate_rejected_on_restore(archived_world, kv_chain):
    path = archived_world["archive"].path
    lines = path.read_text().splitlines()
    record = json.loads(lines[-1])
    cert = json.loads(record["certificate"])
    cert["dig"] = "00" * 32
    record["certificate"] = json.dumps(cert, sort_keys=True)
    lines[-1] = json.dumps(record, sort_keys=True)
    path.write_text("\n".join(lines) + "\n")
    genesis, state = make_genesis()
    with pytest.raises(CertificateError):
        restore_issuer(
            archived_world["archive"], genesis, state, fresh_vm(), kv_chain.pow,
            platform=archived_world["platform"], ias=archived_world["ias"],
        )


def test_tampered_block_rejected_on_restore(archived_world, kv_chain):
    path = archived_world["archive"].path
    lines = path.read_text().splitlines()
    record = json.loads(lines[2])
    block = json.loads(record["block"])
    header = json.loads(block["header"])
    header["ts"] = header["ts"] + 1
    block["header"] = json.dumps(header, sort_keys=True)
    record["block"] = json.dumps(block, sort_keys=True)
    lines[2] = json.dumps(record, sort_keys=True)
    path.write_text("\n".join(lines) + "\n")
    genesis, state = make_genesis()
    with pytest.raises(BlockValidationError):
        restore_issuer(
            archived_world["archive"], genesis, state, fresh_vm(), kv_chain.pow,
            platform=archived_world["platform"], ias=archived_world["ias"],
        )


def test_restore_on_wrong_platform_fails(archived_world, kv_chain):
    from repro.errors import EnclaveError

    genesis, state = make_genesis()
    with pytest.raises(EnclaveError):
        restore_issuer(
            archived_world["archive"], genesis, state, fresh_vm(), kv_chain.pow,
            platform=SGXPlatform(seed=b"thief"), ias=archived_world["ias"],
        )


def test_missing_head_record_rejected(tmp_path):
    archive = ChainArchive(tmp_path / "empty.jsonl")
    archive.path.write_text("")
    with pytest.raises(CertificateError):
        archive.load()


def test_restore_with_index_specs(kv_chain, tmp_path):
    """Index certificates are re-derived during replay; the restored CI
    reaches the same certified index roots."""
    from repro.query.indexes import AccountHistoryIndexSpec, KeywordIndexSpec

    specs = [AccountHistoryIndexSpec(name="history"), KeywordIndexSpec(name="keyword")]
    ias = AttestationService(seed=b"archive-idx-ias")
    platform = SGXPlatform(seed=b"archive-idx-platform")
    genesis, state = make_genesis()
    issuer = CertificateIssuer(
        genesis, state, fresh_vm(), kv_chain.pow,
        index_specs=specs, ias=ias, platform=platform, key_seed=b"archive-idx",
    )
    archive = ChainArchive(tmp_path / "idx.jsonl")
    archive.initialize(issuer.seal_signing_key())
    for block in kv_chain.blocks[1:5]:
        certified = issuer.process_block(block)
        archive.append(block, certified.certificate)

    genesis2, state2 = make_genesis()
    restored = restore_issuer(
        archive, genesis2, state2, fresh_vm(), kv_chain.pow,
        index_specs=specs, platform=platform, ias=ias,
    )
    for name in ("history", "keyword"):
        assert restored.index_root(name) == issuer.index_root(name)
        assert (
            restored.index_certificate(name).encode()
            == issuer.index_certificate(name).encode()
        )
