"""Unit tests for the invariant checkers themselves.

Each test plants one specific inconsistency in an otherwise-healthy
world and asserts the matching checker — and only a checker with the
right name — trips.  The world is module-scoped (building one is the
expensive part); every mutation is reverted.
"""

import pytest

from repro import obs
from repro.sim import (
    PAPER_STORAGE_BUDGET_BYTES,
    InvariantSuite,
    InvariantViolation,
    SimConfig,
    SimWorld,
)
from repro.sim.world import KIND_GATEWAY

pytestmark = pytest.mark.sim

CONFIG = SimConfig(premine=3, replicas=2, pollers=1, gateway_clients=1,
                   subscribers=1)


@pytest.fixture(scope="module")
def world(tmp_path_factory):
    return SimWorld.build(CONFIG, tmp_path_factory.mktemp("sim-inv"))


@pytest.fixture()
def suite(world):
    fresh = InvariantSuite(world)
    fresh.check(0)  # a healthy world passes; checkers are now primed
    return fresh


def _violation(suite, index=1):
    with pytest.raises(InvariantViolation) as info:
        suite.check(index)
    return info.value


def test_healthy_world_passes_every_checker(world):
    InvariantSuite(world).check(0)


def test_violation_carries_name_and_event_index(world):
    suite = InvariantSuite(world)
    suite._tips["poll1"] = (10_000, b"x")  # claim a much higher past tip
    violation = _violation(suite, index=7)
    assert violation.name == "tip-monotonic"
    assert violation.event_index == 7
    assert "poll1" in violation.detail


def test_tip_monotonic_rejects_height_regression(world, suite):
    entry = world.fleet[0]
    previous = suite._tips[entry.name]
    suite._tips[entry.name] = (previous[0] + 5, previous[1])
    assert _violation(suite).name == "tip-monotonic"


def test_unverified_adoption_rejected(world, suite):
    """A tip change whose certificate fails cold re-verification (here:
    a certificate for a *different* header) is an unverified adoption."""
    entry = world.fleet[0]
    inner = entry.client.client
    original = suite._tips.pop(entry.name)  # force re-verification
    saved_header = inner.latest_header
    inner.latest_header = world.builder.blocks[1].header
    try:
        assert _violation(suite).name == "no-unverified-adoption"
    finally:
        inner.latest_header = saved_header
        suite._tips[entry.name] = original


def test_storage_budget_enforced(world, suite):
    entry = world.fleet[0]
    entry.client.storage_bytes = (
        lambda: PAPER_STORAGE_BUDGET_BYTES + 1
    )
    try:
        assert _violation(suite).name == "storage-budget"
    finally:
        del entry.client.storage_bytes


def test_oracle_identity_rejects_wrong_answer(world, suite):
    """An answer recorded against the wrong request (byte-different
    from honest local execution) trips the oracle check."""
    from repro.query import HistoryQuery

    ask = HistoryQuery(index="history", account="acct0", t_from=1, t_to=2)
    other = HistoryQuery(index="history", account="acct1", t_from=1, t_to=2)
    world.record_answer(ask, world.oracle.execute(other))
    assert _violation(suite).name == "oracle-identity"
    assert not world.answers  # the checker drains even on failure


def test_cache_coherence_rejects_stale_roots(world, suite):
    entry = next(c for c in world.fleet if c.kind == KIND_GATEWAY)
    cache = entry.client.cache
    cache._entries[(b"bogus-request", b"stale-root")] = None
    try:
        assert _violation(suite).name == "cache-coherence"
    finally:
        del cache._entries[(b"bogus-request", b"stale-root")]


def test_wal_consistency_rejects_reissued_bytes(world, suite):
    suite._cert_fps[1] = (b"different-cert-bytes", ())
    suite._issuer_seen = None  # force a full recompute
    assert _violation(suite).name == "wal-consistent"


def test_metrics_monotonic_rejects_decreasing_counter(world, suite):
    registry = obs.registry()
    saved = registry.counters.get("sim.test.counter")
    registry.counters["sim.test.counter"] = 3
    suite._counters["sim.test.counter"] = 5
    try:
        assert _violation(suite).name == "metrics-monotonic"
    finally:
        if saved is None:
            del registry.counters["sim.test.counter"]
        else:
            registry.counters["sim.test.counter"] = saved


def test_hub_stream_bounded(world, suite):
    saved = world.hub.seq
    world.hub.seq = 10_000
    try:
        assert _violation(suite).name == "hub-stream-bounded"
    finally:
        world.hub.seq = saved


def test_finish_cold_recovers_byte_identical(world):
    """End-of-run: a cold recover_issuer from the WAL must rebuild the
    exact same certificates the live issuer holds."""
    InvariantSuite(world).finish(0)


def test_canary_checker_trips_in_a_healthy_world(world):
    """Canaries are wrong on purpose: 'low-storage' (1 KB budget) fails
    against any bootstrapped client (~3 KB)."""
    suite = InvariantSuite(world, canary="low-storage")
    violation = _violation(suite, index=0)
    assert violation.name == "low-storage"
