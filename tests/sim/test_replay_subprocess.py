"""Seeded-failure reproducibility, end to end through a subprocess.

The contract every layer (proptest, chaos, sim) promises: a failing
case prints a replay command which, pasted into a shell, reproduces the
same failure.  Here we arm a canary invariant, let the harness catch
and shrink it, then *literally execute the printed command* and require
the child pytest run to fail with the same violation.
"""

import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

from repro.sim import run_and_shrink

pytestmark = [pytest.mark.sim, pytest.mark.slow]

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_printed_replay_command_reproduces_the_failure():
    seed, events, canary = 4, 24, "height-cap"  # fires at event 8
    with pytest.raises(AssertionError) as info:
        run_and_shrink(seed, events, canary=canary)
    message = str(info.value)

    match = re.search(r"replay: (REPRO_SIM_REPLAY=\S+.*)$", message,
                      re.MULTILINE)
    assert match, f"no replay command printed in:\n{message}"
    command = match.group(1)
    assert f"REPRO_SIM_REPLAY={seed}:" in command
    assert f"REPRO_SIM_CANARY={canary}" in command

    env = dict(os.environ)
    env.pop("REPRO_SIM_SEED", None)
    env.pop("REPRO_SIM_EVENTS", None)
    # The command carries its own env assignments; run it verbatim.
    proc = subprocess.run(
        ["bash", "-c", command.replace("python ", f"{sys.executable} ", 1)],
        cwd=REPO_ROOT, env=env, capture_output=True, text=True, timeout=570,
    )
    output = proc.stdout + proc.stderr
    assert proc.returncode != 0, (
        f"replay command passed instead of reproducing:\n{command}\n{output}"
    )
    assert canary in output, (
        f"child run failed for a different reason:\n{output}"
    )
