"""Whole-system simulation: seeded schedules over the full stack.

Deterministic by default (fixed seed, small schedule).  The knobs:

* ``REPRO_SIM_SEED=n`` — explore a different schedule stream;
* ``REPRO_SIM_EVENTS=n`` — deepen the run (``make sim`` uses 500+);
* ``REPRO_SIM_REPLAY=seed:events`` — rerun exactly one case through
  :func:`test_replay` (failures print this command);
* ``REPRO_SIM_CANARY=name`` — arm a deliberately-broken invariant;
* ``REPRO_SIM_PROFILE=name`` — pick the event mix (``mixed`` default,
  ``overload`` for the saturation-heavy schedule).
"""

import os
import re

import pytest

from repro.sim import (
    CANARIES,
    knobs_from_env,
    run_and_shrink,
    run_sim,
)

pytestmark = pytest.mark.sim


def test_mixed_workload_passes_invariants():
    """The headline run: a seeded mix of workload and fault events over
    the whole deployment, every global invariant checked after every
    event, shrink + replay command on any violation."""
    seed, events, canary, profile = knobs_from_env()
    result = run_and_shrink(seed, events, canary=canary, profile=profile)
    assert result.events_applied == events
    assert len(result.fingerprint) == 64


def test_replay():
    """The replay entry point the printed command targets: runs exactly
    ``REPRO_SIM_REPLAY=seed:events`` (plus any armed canary) and fails
    with the violation and the tail of the event log."""
    if not os.environ.get("REPRO_SIM_REPLAY"):
        pytest.skip("set REPRO_SIM_REPLAY=seed:events to replay one case")
    seed, events, canary, profile = knobs_from_env()
    result = run_sim(seed, events, canary=canary, profile=profile)
    assert result.violation is None, (
        f"{result.violation}\nlast events:\n" + "\n".join(result.log[-8:])
    )


@pytest.mark.slow
def test_same_seed_is_byte_identical():
    """Two runs of the same seed produce identical event logs — the
    determinism contract everything else (replay, shrink) rests on."""
    first = run_sim(11, 40)
    second = run_sim(11, 40)
    assert first.ok, first.violation
    assert first.log == second.log
    assert first.fingerprint == second.fingerprint


def test_different_seeds_diverge():
    first = run_sim(1, 25)
    second = run_sim(2, 25)
    assert first.ok and second.ok
    assert first.fingerprint != second.fingerprint


@pytest.mark.slow
def test_canary_caught_shrunk_and_replayable():
    """An intentionally-broken invariant is (a) caught, (b) shrunk to a
    strictly shorter event prefix, and (c) reproduced by the printed
    replay case."""
    seed, events = 7, 60
    with pytest.raises(AssertionError) as info:
        run_and_shrink(seed, events, canary="height-cap")
    message = str(info.value)
    assert "height-cap" in message
    match = re.search(r"REPRO_SIM_REPLAY=(\d+):(\d+)", message)
    assert match, f"no replay command in:\n{message}"
    assert int(match.group(1)) == seed
    shrunk = int(match.group(2))
    assert shrunk < events, "shrinking never shortened the schedule"
    # The shrunk case reproduces the same violation on its own.
    replayed = run_sim(seed, shrunk, canary="height-cap")
    assert replayed.violation is not None
    assert replayed.violation.name == "height-cap"
    # One event fewer does not: the prefix is minimal.
    below = run_sim(seed, shrunk - 1, canary="height-cap")
    assert below.violation is None


def test_canary_catalog_is_documented():
    for name, (description, factory) in CANARIES.items():
        assert description and callable(factory), name
