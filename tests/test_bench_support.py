"""The benchmark support package: params, generators, harness, reporting."""

import pytest

from repro.bench.params import BenchParams, load_params
from repro.bench.reporting import print_series, print_table
from repro.bench.workloadgen import WorkloadGenerator


def test_default_profile_is_quick(monkeypatch):
    monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
    assert load_params().name == "quick"


def test_full_profile_selectable(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_SCALE", "full")
    params = load_params()
    assert params.name == "full"
    assert params.query_blocks > BenchParams(name="x").query_blocks


def test_unknown_profile_rejected(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_SCALE", "galactic")
    with pytest.raises(ValueError):
        load_params()


@pytest.fixture()
def generator(bench_params):
    return WorkloadGenerator(bench_params, seed=1)


def test_generator_is_deterministic(bench_params):
    first = WorkloadGenerator(bench_params, seed=9).block_txs("KV", 5)
    second = WorkloadGenerator(bench_params, seed=9).block_txs("KV", 5)
    assert [tx.encode() for tx in first] == [tx.encode() for tx in second]


def test_generator_seeds_differ(bench_params):
    first = WorkloadGenerator(bench_params, seed=1).block_txs("KV", 5)
    second = WorkloadGenerator(bench_params, seed=2).block_txs("KV", 5)
    assert [tx.encode() for tx in first] != [tx.encode() for tx in second]


@pytest.mark.parametrize("workload,contract", [
    ("DN", "donothing"),
    ("CPU", "cpuheavy"),
    ("IO", "ioheavy"),
    ("KV", "kvstore"),
    ("SB", "smallbank"),
])
def test_generator_emits_signed_workload_txs(generator, workload, contract):
    txs = generator.block_txs(workload, 4)
    assert len(txs) == 4
    for tx in txs:
        assert tx.contract == contract
        assert tx.verify_signature()


def test_generator_nonces_unique(generator):
    txs = generator.block_txs("KV", 10)
    nonces = [tx.nonce for tx in txs]
    assert len(set(nonces)) == len(nonces)


def test_smallbank_setup_covers_all_accounts(generator, bench_params):
    setup = generator.smallbank_setup_txs()
    assert len(setup) == bench_params.num_accounts
    assert all(tx.method == "create" for tx in setup)


def test_history_and_keyword_factories(generator):
    tx = generator.history_update_tx(3)
    assert tx.contract == "kvstore" and tx.args[0] == "acct3"
    keyword_tx = generator.keyword_tx(["alpha", "beta", "gamma"], keywords_per_tx=2)
    tokens = keyword_tx.args[1].split()
    assert len(tokens) == 2 and set(tokens) <= {"alpha", "beta", "gamma"}


def test_harness_records_breakdowns(bench_params):
    from repro.bench.harness import CertifiedChainHarness

    harness = CertifiedChainHarness(bench_params, network="support-test")
    harness.grow_workload("KV", 2, 3)
    assert len(harness.timings) == 2
    mean = harness.mean_timing()
    assert mean.total_s > 0
    assert mean.outside_s > 0
    assert mean.inside_s > 0
    # Cost model is disabled in unit tests: no modeled overhead.
    assert mean.enclave_overhead_s == 0
    assert harness.issuer.node.height == 2


def test_print_table_formats(capsys):
    print_table("T", ["a", "b"], [[1, 0.5], ["x", 1234567]])
    out = capsys.readouterr().out
    assert "== T ==" in out
    assert "1,234,567" in out


def test_print_series_merges_axes(capsys):
    print_series("S", "x", {"one": {1: "a", 2: "b"}, "two": {2: "c"}})
    out = capsys.readouterr().out
    assert "one" in out and "two" in out and "-" in out
