"""End-to-end: a remote superlight client over a faulty network.

The acceptance scenario for the RPC layer: bootstrap and certified
queries against two Service Providers while the link to SP1 drops 30%
of messages and a tampering middlebox forges one response.  The forgery
must be *detected* (root verification), never silently accepted; the
client fails over and still returns a verified answer.  With every
provider dark, the client must fail in bounded time with
ServiceUnavailableError.
"""

import random
from dataclasses import replace

import pytest

from repro.chain import ChainBuilder
from repro.chain.genesis import make_genesis
from repro.chain.transaction import sign_transaction
from repro.core import (
    CertificateIssuer,
    IssuerService,
    ClientConfig,
    compute_expected_measurement,
    connect,
)
from repro.crypto import generate_keypair
from repro.errors import ServiceUnavailableError
from repro.net import (
    FaultInjector,
    LinkFaults,
    MessageBus,
    RetryPolicy,
    RpcResponse,
)
from repro.net import wire
from repro.query import (
    AggregateQuery,
    HistoryQuery,
    KeywordQuery,
    QueryAnswer,
    QueryService,
    ValueRangeQuery,
)
from repro.query.indexes import (
    AccountHistoryIndexSpec,
    BalanceAggregateIndexSpec,
    KeywordIndexSpec,
    ValueRangeIndexSpec,
)
from repro.query.provider import QueryServiceProvider
from repro.sgx.attestation import AttestationService
from tests.conftest import fresh_vm


@pytest.fixture(scope="module")
def world():
    """A certified chain with all four index families, CI + SP state."""
    user = generate_keypair(b"remote-user")
    builder = ChainBuilder(difficulty_bits=4, network="remote")
    nonce = [0]

    def tx(contract, method, *args):
        signed = sign_transaction(
            user.private, nonce[0], contract, method, tuple(args)
        )
        nonce[0] += 1
        return signed

    builder.add_block([tx("smallbank", "create", "a1", "1000", "500")])
    for round_ in range(6):
        builder.add_block([
            tx("smallbank", "deposit_checking", "a1", "50"),
            tx("kvstore", "put", "acct1", f"v{round_}"),
        ])

    specs = [
        AccountHistoryIndexSpec(name="history"),
        KeywordIndexSpec(name="keyword"),
        BalanceAggregateIndexSpec(name="aggregate"),
        ValueRangeIndexSpec(name="range"),
    ]
    genesis, state = make_genesis(network="remote")
    ias = AttestationService(seed=b"remote-ias")
    issuer = CertificateIssuer(
        genesis, state, fresh_vm(), builder.pow,
        index_specs=specs, ias=ias, key_seed=b"remote-enclave",
    )
    sp_genesis, sp_state = make_genesis(network="remote")
    provider = QueryServiceProvider(
        sp_genesis, sp_state, fresh_vm(), builder.pow, specs
    )
    for block in builder.blocks[1:]:
        issuer.process_block(block)
        provider.ingest_block(block)

    measurement = compute_expected_measurement(
        genesis.header.header_hash(), ias.public_key, fresh_vm(),
        builder.pow.difficulty_bits, {spec.name: spec for spec in specs},
    )
    return {
        "builder": builder,
        "issuer": issuer,
        "provider": provider,
        "measurement": measurement,
        "ias": ias,
    }


def make_network(world, *, injector=None, providers=("sp1", "sp2"),
                 integrity_retries=2):
    bus = MessageBus(default_latency_ms=20.0)
    if injector is not None:
        bus.install_faults(injector)
    IssuerService(bus, "ci", world["issuer"])
    for name in providers:
        QueryService(bus, name, world["provider"])
    client = connect(ClientConfig(
        measurement=world["measurement"],
        ias_public_key=world["ias"].public_key,
        bus=bus, name="client",
        issuers=("ci",), providers=tuple(providers),
        policy=RetryPolicy(timeout_ms=150.0, max_attempts=3,
                           backoff_base_ms=20.0),
        integrity_retries=integrity_retries,
    ))
    return bus, client


class ForgeOneAnswer:
    """A middlebox that drops one version from one query answer —
    a forgery that decodes fine and only root verification can catch."""

    def __init__(self) -> None:
        self.fired = False

    def __call__(self, message: object, rng: random.Random) -> object:
        if self.fired or not isinstance(message, RpcResponse) or not message.ok:
            return message
        answer = wire.decode(message.payload)
        if not isinstance(answer, QueryAnswer):
            return message  # a bootstrap reply; wait for a query answer
        versions = getattr(answer.payload, "versions", ())
        if not versions:
            return message
        self.fired = True
        forged = replace(
            answer, payload=replace(answer.payload, versions=versions[:-1])
        )
        return replace(message, payload=wire.encode(forged))


def test_acceptance_lossy_link_plus_forged_response(world):
    injector = FaultInjector(seed=9)
    forge = ForgeOneAnswer()
    injector.set_link("client", "sp1", LinkFaults(drop_rate=0.3))
    injector.set_link(
        "sp1", "client",
        LinkFaults(drop_rate=0.3, corrupt_rate=1.0, corrupter=forge),
    )
    bus, client = make_network(world, injector=injector, integrity_retries=1)

    client.bootstrap()
    height = world["builder"].height
    assert client.latest_header is not None
    assert client.latest_header.height == height
    assert client.storage_bytes() < 10_000  # still a superlight client

    request = HistoryQuery(
        index="history", account="acct1", t_from=1, t_to=height
    )
    answer = client.query(request)
    # The forgery struck and was *detected*, not silently accepted:
    assert forge.fired
    assert client.integrity_failures >= 1
    assert client.failovers >= 1  # SP2 served the good answer
    assert len(answer.payload.versions) == 6
    assert client.client.verify_answer(request, answer)


def test_all_four_query_types_round_trip_over_rpc(world):
    bus, client = make_network(world)
    client.bootstrap()
    height = world["builder"].height
    provider = world["provider"]

    requests = [
        HistoryQuery(index="history", account="acct1", t_from=1, t_to=height),
        AggregateQuery(index="aggregate", account="a1", t_from=1, t_to=height),
        ValueRangeQuery(index="range", lo=0, hi=10_000),
        KeywordQuery(index="keyword", keywords=("acct1",)),
    ]
    for request in requests:
        answer = client.query(request)
        assert client.client.verify_answer(request, answer)
        # The wire round trip is lossless: identical to a local execute.
        assert answer == provider.execute(request)


def test_permanent_provider_outage_fails_bounded(world):
    injector = FaultInjector(seed=10)
    for sp in ("sp1", "sp2"):
        injector.set_link("client", sp, LinkFaults(drop_rate=1.0))
        injector.set_link(sp, "client", LinkFaults(drop_rate=1.0))
    bus, client = make_network(world, injector=injector)
    client.bootstrap()  # the issuer link is clean

    before_ms = bus.clock_ms
    request = HistoryQuery(index="history", account="acct1", t_from=1, t_to=2)
    with pytest.raises(ServiceUnavailableError):
        client.query(request)
    # Bounded: 2 providers x 3 attempts x 150ms (+ backoff), not forever.
    assert client.rpc.timeouts == 6
    assert bus.clock_ms - before_ms < 2_000.0


def test_permanent_issuer_outage_fails_bounded(world):
    injector = FaultInjector(seed=11)
    injector.set_link("client", "ci", LinkFaults(drop_rate=1.0))
    bus, client = make_network(world, injector=injector)
    with pytest.raises(ServiceUnavailableError):
        client.bootstrap()
    assert client.latest_header is None


def test_relentless_forgery_on_every_provider_is_never_accepted(world):
    class ForgeAlways(ForgeOneAnswer):
        def __call__(self, message, rng):
            self.fired = False  # re-arm for every response
            return super().__call__(message, rng)

    injector = FaultInjector(seed=12)
    for sp in ("sp1", "sp2"):
        injector.set_link(
            sp, "client", LinkFaults(corrupt_rate=1.0, corrupter=ForgeAlways())
        )
    bus, client = make_network(world, injector=injector, integrity_retries=2)
    client.bootstrap()
    request = HistoryQuery(
        index="history", account="acct1", t_from=1, t_to=world["builder"].height
    )
    with pytest.raises(ServiceUnavailableError):
        client.query(request)
    assert client.integrity_failures >= 4  # every forgery was detected
