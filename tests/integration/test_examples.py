"""Smoke tests: every shipped example runs to completion.

Each example's ``main()`` contains its own assertions (verification
succeeds, tampering is caught), so executing it is a real end-to-end
check of the public API.  The suite-wide cost-model-disable fixture
keeps these fast.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str) -> None:
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)


@pytest.mark.parametrize(
    "name",
    [
        "quickstart",
        "historical_queries",
        "keyword_search",
        "aggregate_analytics",
        "state_sync",
        "certificate_network",
        "faulty_network",
    ],
)
def test_example_runs(name, capsys):
    run_example(name)
    out = capsys.readouterr().out
    assert out  # examples narrate what they demonstrate


def test_multi_index_example_runs(capsys):
    """Separate case: it is the slowest (certifies under both schemes)."""
    run_example("multi_index_certification")
    out = capsys.readouterr().out
    assert "augmented" in out
