"""Multiple Certificate Issuers: switching, agreement, independence.

§4.3: a superlight client re-checks an attestation report only when it
switches to another CI's certification service.  These tests run two
independent CIs (same enclave program, different platforms and keys)
over the same chain and exercise the switch.
"""

import pytest

from repro.chain.genesis import make_genesis
from repro.core.issuer import CertificateIssuer
from repro.core.superlight import SuperlightClient
from repro.sgx.platform import SGXPlatform
from tests.conftest import fresh_vm


@pytest.fixture(scope="module")
def two_cis(certified_setup):
    """A second CI over the same chain as the session fixture's CI."""
    setup = certified_setup
    genesis, state = make_genesis()
    second = CertificateIssuer(
        genesis, state, fresh_vm(), setup["chain"].pow,
        index_specs=list(setup["specs"].values()),
        platform=SGXPlatform(seed=b"second-ci"),
        ias=setup["ias"],
        key_seed=b"second-enclave-key",
    )
    for block in setup["chain"].blocks[1:]:
        second.process_block(block)
    return setup["issuer"], second


def test_cis_share_a_measurement_but_not_keys(two_cis):
    first, second = two_cis
    assert first.measurement == second.measurement
    assert first.pk_enc != second.pk_enc


def test_cis_agree_on_index_roots(two_cis):
    first, second = two_cis
    for name in ("history", "keyword"):
        assert first.index_root(name) == second.index_root(name)


def test_client_switches_cis_with_one_extra_report_check(two_cis, certified_setup):
    first, second = two_cis
    client = SuperlightClient(
        first.measurement, certified_setup["ias"].public_key
    )
    mid = first.certified[4]
    assert client.validate_chain(mid.block.header, mid.certificate)
    assert len(client._verified_reports) == 1
    # Switch: the second CI's newer tip — one new report check, then done.
    tip = second.certified[-1]
    assert client.validate_chain(tip.block.header, tip.certificate)
    assert len(client._verified_reports) == 2
    earlier = second.certified[5]
    assert client.validate_chain(earlier.block.header, earlier.certificate) is False
    assert len(client._verified_reports) == 2


def test_either_ci_certificate_verifies_the_same_block(two_cis, certified_setup):
    first, second = two_cis
    client = SuperlightClient(
        first.measurement, certified_setup["ias"].public_key
    )
    height = 6
    from_first = first.certified[height - 1]
    from_second = second.certified[height - 1]
    assert from_first.block.header == from_second.block.header
    assert client.validate_chain(from_first.block.header, from_first.certificate)
    # Same header re-presented with the other CI's certificate: loses
    # the tie-break (same hash), but the certificate itself is valid —
    # no exception, just not adopted.
    assert (
        client.validate_chain(from_second.block.header, from_second.certificate)
        is False
    )
