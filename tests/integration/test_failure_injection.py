"""Failure injection: every party misbehaves, every check fires.

Each test corrupts one link of the trust chain — the miner, the CI's
outside-enclave program, the proofs, the SP — and asserts the failure
is contained exactly where the design says it should be.
"""

import pytest
from dataclasses import replace

from repro.chain.block import Block
from repro.chain.builder import ChainBuilder
from repro.chain.genesis import make_genesis
from repro.chain.transaction import Transaction, sign_transaction
from repro.core.issuer import CertificateIssuer
from repro.core.updateproof import UpdateProof
from repro.crypto import generate_keypair
from repro.errors import (
    BlockValidationError,
    CertificateError,
    ProofError,
)
from repro.sgx.attestation import AttestationService
from tests.conftest import fresh_vm


@pytest.fixture()
def world():
    keypair = generate_keypair(b"inject-tests")
    builder = ChainBuilder(difficulty_bits=4, network="inject")
    nonce = [0]

    def next_tx(key="k", value="v"):
        tx = sign_transaction(
            keypair.private, nonce[0], "kvstore", "put", (key, value)
        )
        nonce[0] += 1
        return tx

    for _ in range(3):
        builder.add_block([next_tx()])
    genesis, state = make_genesis(network="inject")
    issuer = CertificateIssuer(
        genesis, state, fresh_vm(), builder.pow,
        ias=AttestationService(seed=b"inject-ias"), key_seed=b"inject-enclave",
    )
    for block in builder.blocks[1:]:
        issuer.process_block(block)
    return {"builder": builder, "issuer": issuer, "next_tx": next_tx, "keypair": keypair}


def mine_block(world, transactions):
    block, _ = world["builder"].add_block(transactions)
    return block


def test_equivocating_miner_rejected_at_ci(world):
    """A miner publishing a block with a self-serving state root (double
    crediting itself) is stopped by the CI's re-execution."""
    block = mine_block(world, [world["next_tx"]("honest", "1")])
    forged_header = world["builder"].pow.solve(
        replace(block.header, state_root=bytes(32), nonce=0)
    )
    with pytest.raises(BlockValidationError):
        world["issuer"].gen_cert(Block(forged_header, block.transactions))
    # The honest block still certifies fine afterwards.
    world["issuer"].process_block(block)


def test_replayed_transaction_changes_tx_root(world):
    """A miner duplicating a user transaction produces a different tx
    root, so the original header no longer covers the block."""
    tx = world["next_tx"]("dup", "1")
    block = mine_block(world, [tx])
    duplicated = Block(block.header, block.transactions + (tx,))
    assert not duplicated.check_tx_root()
    with pytest.raises(BlockValidationError):
        world["issuer"].gen_cert(duplicated)
    world["issuer"].process_block(block)


def test_ci_feeding_stale_proofs_is_caught_in_enclave(world):
    """The CI's untrusted half hands the enclave an update proof built
    against the wrong (older) state root."""
    issuer = world["issuer"]
    block_n1 = mine_block(world, [world["next_tx"]("k", "n1")])
    issuer.process_block(block_n1)
    block_n2 = mine_block(world, [world["next_tx"]("k", "n2")])
    result, _ = issuer.preprocess(block_n2)
    # Build the proof against the *post*-block state: stale/mismatched.
    wrong_state_proof = UpdateProof(
        entries=tuple(
            (key, b"bogus", proof)
            for key, _, proof in issuer.node.state.prove_many(result.touched_keys())
        )
    )
    with pytest.raises(ProofError):
        issuer.enclave.ecall(
            "sig_gen", issuer.node.tip, issuer.latest_certificate,
            block_n2, wrong_state_proof,
        )
    issuer.process_block(block_n2)


def test_unsigned_transaction_in_block_rejected(world):
    """A block smuggling an unsigned transaction fails Alg. 2 line 19."""
    issuer = world["issuer"]
    keypair = world["keypair"]
    unsigned = Transaction(
        sender=keypair.public, nonce=12345, contract="kvstore",
        method="put", args=("x", "y"),
    )
    good = world["next_tx"]()
    block = mine_block(world, [good])
    smuggled_header = world["builder"].pow.solve(
        replace(
            block.header,
            tx_root=Block(block.header, (good, unsigned)).compute_tx_root(),
            nonce=0,
        )
    )
    smuggled = Block(header=smuggled_header, transactions=(good, unsigned))
    with pytest.raises(BlockValidationError):
        issuer.gen_cert(smuggled)
    issuer.process_block(block)


def test_enclave_restart_loses_key_but_new_certs_still_verify(world):
    """A restarted CI gets a fresh enclave key; clients re-check one new
    attestation report and continue (§4.3)."""
    from repro.core.superlight import SuperlightClient

    issuer = world["issuer"]
    client = SuperlightClient(issuer.measurement, issuer.ias.public_key)
    tip = issuer.certified[-1]
    client.validate_chain(tip.block.header, tip.certificate)

    # Second CI: same program (same measurement), different key seed.
    genesis, state = make_genesis(network="inject")
    second = CertificateIssuer(
        genesis, state, fresh_vm(), world["builder"].pow,
        ias=issuer.ias, key_seed=b"inject-enclave-2",
    )
    for block in world["builder"].blocks[1:]:
        second.process_block(block)
    assert second.measurement == issuer.measurement
    assert second.pk_enc != issuer.pk_enc
    new_tip = second.certified[-1]
    # Same height: only the hash tie-break decides; no exception either way.
    client.validate_chain(new_tip.block.header, new_tip.certificate)
    assert len(client._verified_reports) == 2


def test_mixed_honest_and_corrupt_certificate_stream(world):
    """A client fed interleaved honest/corrupt certificates ends up on
    the honest tip with every corrupt one rejected."""
    from repro.core.superlight import SuperlightClient

    issuer = world["issuer"]
    client = SuperlightClient(issuer.measurement, issuer.ias.public_key)
    rejected = 0
    for certified in issuer.certified:
        client.validate_chain(certified.block.header, certified.certificate)
        corrupt = replace(certified.certificate, dig=bytes(32))
        try:
            client.validate_chain(certified.block.header, corrupt)
        except CertificateError:
            rejected += 1
    assert rejected == len(issuer.certified)
    assert client.latest_header.height == issuer.node.height
