"""Forks: two CIs certify competing branches; chain selection decides."""

import pytest

from repro.chain.builder import ChainBuilder
from repro.chain.genesis import make_genesis
from repro.chain.transaction import sign_transaction
from repro.core.issuer import CertificateIssuer
from repro.core.superlight import SuperlightClient
from repro.crypto import generate_keypair
from repro.sgx.attestation import AttestationService
from tests.conftest import fresh_vm


@pytest.fixture(scope="module")
def forked_world():
    """Two branches from a common 3-block prefix: branch A extends to
    height 5, branch B to height 7."""
    keypair = generate_keypair(b"fork-tests")
    ias = AttestationService(seed=b"fork-ias")

    def kv(nonce, key, value):
        return sign_transaction(keypair.private, nonce, "kvstore", "put", (key, value))

    branch_a = ChainBuilder(difficulty_bits=4, network="forknet")
    nonce = 0
    for height in range(1, 4):
        branch_a.add_block([kv(nonce, f"common{height}", "x")])
        nonce += 1

    # Clone the prefix into branch B by replaying it.
    branch_b = ChainBuilder(difficulty_bits=4, network="forknet")
    import repro.chain.node  # noqa: F401  (replay path exercised below)

    for block in branch_a.blocks[1:]:
        branch_b.blocks.append(block)
        result = branch_b.miner.executor.execute(
            branch_b.state, list(block.transactions), strict=True
        )
        branch_b.state.apply_writes(result.write_set)
        branch_b.results.append(result)

    for height in range(4, 6):
        branch_a.add_block([kv(nonce, f"a{height}", "a")])
        nonce += 1
    for height in range(4, 8):
        branch_b.add_block([kv(nonce, f"b{height}", "b")])
        nonce += 1

    issuers = {}
    for label, branch in (("a", branch_a), ("b", branch_b)):
        genesis, state = make_genesis(network="forknet")
        issuer = CertificateIssuer(
            genesis, state, fresh_vm(), branch.pow, ias=ias,
            key_seed=b"fork-enclave",  # same enclave program identity
        )
        for block in branch.blocks[1:]:
            issuer.process_block(block)
        issuers[label] = issuer
    return {
        "ias": ias,
        "branch_a": branch_a,
        "branch_b": branch_b,
        "issuers": issuers,
    }


def test_both_branches_certify(forked_world):
    assert forked_world["issuers"]["a"].node.height == 5
    assert forked_world["issuers"]["b"].node.height == 7


def test_client_follows_longest_branch(forked_world):
    issuer_a = forked_world["issuers"]["a"]
    issuer_b = forked_world["issuers"]["b"]
    client = SuperlightClient(issuer_a.measurement, forked_world["ias"].public_key)
    tip_a = issuer_a.certified[-1]
    tip_b = issuer_b.certified[-1]
    assert client.validate_chain(tip_a.block.header, tip_a.certificate)
    # The longer branch displaces the shorter one...
    assert client.validate_chain(tip_b.block.header, tip_b.certificate)
    assert client.latest_header.height == 7
    # ...and the shorter one cannot displace it back.
    assert not client.validate_chain(tip_a.block.header, tip_a.certificate)
    assert client.latest_header.height == 7


def test_client_order_independent(forked_world):
    issuer_a = forked_world["issuers"]["a"]
    issuer_b = forked_world["issuers"]["b"]
    client = SuperlightClient(issuer_b.measurement, forked_world["ias"].public_key)
    tip_b = issuer_b.certified[-1]
    tip_a = issuer_a.certified[-1]
    assert client.validate_chain(tip_b.block.header, tip_b.certificate)
    assert not client.validate_chain(tip_a.block.header, tip_a.certificate)
    assert client.latest_header.height == 7


def test_equal_height_ties_break_deterministically(forked_world):
    issuer_a = forked_world["issuers"]["a"]
    certified_5a = issuer_a.certified[4]  # height 5 on branch A
    issuer_b = forked_world["issuers"]["b"]
    certified_5b = issuer_b.certified[4]  # height 5 on branch B
    client = SuperlightClient(issuer_a.measurement, forked_world["ias"].public_key)
    client.validate_chain(certified_5a.block.header, certified_5a.certificate)
    client.validate_chain(certified_5b.block.header, certified_5b.certificate)
    expected = min(
        (certified_5a.block.header, certified_5b.block.header),
        key=lambda header: header.header_hash(),
    )
    assert client.latest_header == expected
