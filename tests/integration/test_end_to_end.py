"""End-to-end integration: miner -> CI -> SP -> superlight client."""

import pytest

from repro.chain.genesis import make_genesis
from repro.core.superlight import SuperlightClient, compute_expected_measurement
from repro.query.indexes import AccountHistoryIndexSpec, KeywordIndexSpec
from repro.query.provider import QueryServiceProvider
from tests.conftest import fresh_vm


@pytest.fixture(scope="module")
def world(certified_setup):
    """The full topology: the CI from the session fixture plus an
    independent SP and a superlight client."""
    setup = certified_setup
    genesis, state = make_genesis()
    provider = QueryServiceProvider(
        genesis,
        state,
        fresh_vm(),
        setup["chain"].pow,
        [AccountHistoryIndexSpec(name="history"), KeywordIndexSpec(name="keyword")],
    )
    for block in setup["chain"].blocks[1:]:
        provider.ingest_block(block)
    measurement = compute_expected_measurement(
        setup["genesis"].header.header_hash(),
        setup["ias"].public_key,
        fresh_vm(),
        setup["chain"].pow.difficulty_bits,
        setup["specs"],
    )
    client = SuperlightClient(measurement, setup["ias"].public_key)
    return {**setup, "provider": provider, "client": client}


def test_client_follows_broadcast_certificates(world):
    client = world["client"]
    for certified in world["issuer"].certified:
        client.validate_chain(certified.block.header, certified.certificate)
        for name, cert in certified.index_certificates.items():
            client.validate_index_certificate(
                name, certified.block.header, certified.index_roots[name], cert
            )
    assert client.latest_header.height == world["chain"].height


def test_independent_sp_serves_verifiable_queries(world):
    client = world["client"]
    tip = world["issuer"].certified[-1]
    client.validate_chain(tip.block.header, tip.certificate)
    for name, cert in tip.index_certificates.items():
        client.validate_index_certificate(
            name, tip.block.header, tip.index_roots[name], cert
        )
    from repro.query.api import HistoryQuery, KeywordQuery

    history_request = HistoryQuery(
        index="history", account="k0", t_from=1, t_to=10
    )
    history = world["provider"].execute(history_request)
    assert len(history.payload.versions) >= 2
    assert client.verify_answer(history_request, history)
    keyword_request = KeywordQuery(index="keyword", keywords=("k0",))
    keywords = world["provider"].execute(keyword_request)
    assert client.verify_answer(keyword_request, keywords)


def test_sp_and_ci_agree_bit_for_bit(world):
    assert world["provider"].index_root("history") == world["issuer"].index_root("history")
    assert world["provider"].index_root("keyword") == world["issuer"].index_root("keyword")
    assert world["provider"].node.state.root == world["issuer"].node.state.root


def test_certificates_survive_serialization_roundtrip(world):
    from repro.core.certificate import Certificate

    client = world["client"]
    tip = world["issuer"].certified[-1]
    wire = tip.certificate.encode()
    assert client.validate_chain(tip.block.header, Certificate.decode(wire)) in (
        True,
        False,
    )  # decodes and validates without raising


def test_full_broadcast_over_message_bus(world):
    from repro.net import CertificateAnnouncement, MessageBus, NetworkNode

    bus = MessageBus()
    bus.join(NetworkNode("ci"))
    listener = bus.join(NetworkNode("client"))
    fresh_client = SuperlightClient(
        world["issuer"].measurement, world["ias"].public_key
    )
    listener.on(
        "certificates",
        lambda message: fresh_client.validate_chain(
            message.header, message.certificate
        ),
    )
    bus.subscribe("client", "certificates")
    for certified in world["issuer"].certified:
        bus.publish(
            "ci",
            "certificates",
            CertificateAnnouncement(
                header=certified.block.header, certificate=certified.certificate
            ),
        )
    bus.run_until_idle()
    assert fresh_client.latest_header.height == world["chain"].height
