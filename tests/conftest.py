"""Shared fixtures for the test suite.

The SGX cost model busy-waits to make benchmark wall clocks honest;
unit tests only care about logic, so it is disabled suite-wide.  The
expensive fixtures (signed transaction pools, certified chains) are
session-scoped and deterministic.
"""

from __future__ import annotations

import pytest

from repro.bench.params import BenchParams
from repro.chain.builder import ChainBuilder
from repro.chain.genesis import make_genesis
from repro.chain.transaction import Transaction, sign_transaction
from repro.chain.vm import VM
from repro.contracts import BLOCKBENCH
from repro.crypto import KeyPair, generate_keypair
from repro.sgx.attestation import AttestationService
from repro.sgx.costs import cost_model_disabled


@pytest.fixture(autouse=True)
def _no_sgx_charges():
    """Unit tests run with the enclave cost model off."""
    with cost_model_disabled():
        yield


@pytest.fixture(scope="session")
def user_keypair() -> KeyPair:
    return generate_keypair(b"test-user")


@pytest.fixture(scope="session")
def second_keypair() -> KeyPair:
    return generate_keypair(b"test-user-2")


def fresh_vm() -> VM:
    vm = VM()
    for factory in BLOCKBENCH.values():
        vm.deploy(factory())
    return vm


@pytest.fixture()
def vm() -> VM:
    return fresh_vm()


def make_kv_tx(keypair: KeyPair, nonce: int, key: str, value: str) -> Transaction:
    return sign_transaction(keypair.private, nonce, "kvstore", "put", (key, value))


@pytest.fixture(scope="session")
def kv_chain(user_keypair) -> ChainBuilder:
    """A 10-block KVStore chain, 3 transactions per block."""
    builder = ChainBuilder(difficulty_bits=4)
    nonce = 0
    for _ in range(10):
        txs = []
        for _ in range(3):
            txs.append(
                make_kv_tx(user_keypair, nonce, f"k{nonce % 4}", f"v{nonce}")
            )
            nonce += 1
        builder.add_block(txs)
    return builder


@pytest.fixture(scope="session")
def certified_setup(kv_chain):
    """A CI that certified the whole kv_chain, with both index kinds."""
    from repro.core.issuer import CertificateIssuer
    from repro.query.indexes import AccountHistoryIndexSpec, KeywordIndexSpec

    with cost_model_disabled():
        genesis, state = make_genesis()
        ias = AttestationService(seed=b"test-ias")
        specs = [
            AccountHistoryIndexSpec(name="history"),
            KeywordIndexSpec(name="keyword"),
        ]
        issuer = CertificateIssuer(
            genesis,
            state,
            fresh_vm(),
            kv_chain.pow,
            index_specs=specs,
            ias=ias,
            key_seed=b"test-enclave",
        )
        for block in kv_chain.blocks[1:]:
            issuer.process_block(block, schemes=("hierarchical", "augmented"))
    return {
        "genesis": genesis,
        "ias": ias,
        "specs": {spec.name: spec for spec in specs},
        "issuer": issuer,
        "chain": kv_chain,
    }


@pytest.fixture(scope="session")
def bench_params() -> BenchParams:
    return BenchParams(name="test", cert_blocks=2, default_block_size=4)
