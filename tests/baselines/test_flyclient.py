"""FlyClient-style sampling client over the MMR."""

import pytest
from dataclasses import replace

from repro.baselines.flyclient import FlyClientProver, FlyClientVerifier
from repro.errors import BlockValidationError


@pytest.fixture(scope="module")
def prover(kv_chain):
    return FlyClientProver(kv_chain.headers())


def test_bootstrap_proof_verifies(prover, kv_chain):
    proof = prover.bootstrap_proof(seed=1)
    verifier = FlyClientVerifier(kv_chain.pow)
    assert verifier.verify(proof)
    assert verifier.accepted_tip == kv_chain.headers()[-1]


def test_sample_count_logarithmic(prover, kv_chain):
    proof = prover.bootstrap_proof(samples_per_log=2, seed=1)
    count = len(kv_chain.headers())
    assert len(proof.samples) <= max(1, 2 * count.bit_length())


def test_tampered_sample_rejected(prover, kv_chain):
    proof = prover.bootstrap_proof(seed=2)
    header, mmr_proof = proof.samples[0]
    forged = replace(header, timestamp=header.timestamp + 999)
    tampered = replace(proof, samples=((forged, mmr_proof),) + proof.samples[1:])
    assert not FlyClientVerifier(kv_chain.pow).verify(tampered)


def test_wrong_mmr_root_rejected(prover, kv_chain):
    proof = prover.bootstrap_proof(seed=3)
    tampered = replace(proof, mmr_root=bytes(32))
    assert not FlyClientVerifier(kv_chain.pow).verify(tampered)


def test_append_keeps_proving(prover, kv_chain):
    grower = FlyClientProver(kv_chain.headers()[:5])
    for header in kv_chain.headers()[5:]:
        grower.append(header)
    proof = grower.bootstrap_proof(seed=4)
    assert FlyClientVerifier(kv_chain.pow).verify(proof)


def test_proof_size_sublinear():
    """At real scales the proof grows ~log^2 while the chain grows
    linearly: 16x more headers must cost far less than 16x the bytes."""
    from repro.chain.block import BlockHeader, ZERO_HASH

    def synthetic_headers(count):
        headers = [
            BlockHeader(0, ZERO_HASH, 0, 0, bytes(32), bytes(32), 0)
        ]
        for height in range(1, count):
            headers.append(
                BlockHeader(
                    height, headers[-1].header_hash(), 0, 0,
                    bytes(32), bytes(32), height,
                )
            )
        return headers

    small = FlyClientProver(synthetic_headers(64)).bootstrap_proof(
        samples_per_log=2, seed=5
    )
    large = FlyClientProver(synthetic_headers(1024)).bootstrap_proof(
        samples_per_log=2, seed=5
    )
    assert large.size_bytes() < small.size_bytes() * 4  # << 16x


def test_empty_chain_rejected():
    with pytest.raises(BlockValidationError):
        FlyClientProver([])
