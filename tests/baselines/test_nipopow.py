"""NIPoPoW-style superblock sampling client."""

import pytest
from dataclasses import replace

from repro.baselines.nipopow import (
    NipopowProver,
    NipopowVerifier,
    superblock_level,
)
from repro.chain.block import BlockHeader, ZERO_HASH
from repro.chain.consensus import ProofOfWork
from repro.errors import BlockValidationError


def synthetic_chain(count, bits=4):
    pow_engine = ProofOfWork(bits)
    headers = [BlockHeader(0, ZERO_HASH, 0, 0, bytes(32), bytes(32), 0)]
    for height in range(1, count):
        template = BlockHeader(
            height, headers[-1].header_hash(), 0, bits,
            bytes(32), bytes(32), height,
        )
        headers.append(pow_engine.solve(template))
    return headers, pow_engine


@pytest.fixture(scope="module")
def chain():
    return synthetic_chain(400)


def test_levels_are_distributed_geometrically(chain):
    headers, pow_engine = chain
    counts = {}
    for header in headers[1:]:
        level = superblock_level(header, pow_engine)
        for mu in range(level + 1):
            counts[mu] = counts.get(mu, 0) + 1
    assert counts[0] == len(headers) - 1
    # Roughly half survive each level (very loose bounds).
    assert counts.get(1, 0) > counts[0] // 5
    assert counts.get(2, 0) < counts[0]


def test_proof_verifies(chain):
    headers, pow_engine = chain
    proof = NipopowProver(headers, pow_engine).bootstrap_proof(m=3, k=3)
    verifier = NipopowVerifier(pow_engine)
    assert verifier.verify(proof)
    assert verifier.accepted_tip == headers[-1]


def test_proof_is_sublinear(chain):
    headers, pow_engine = chain
    short = NipopowProver(headers[:50], pow_engine).bootstrap_proof()
    full = NipopowProver(headers, pow_engine).bootstrap_proof()
    # 8x more headers must cost far less than 8x the proof bytes.
    assert full.size_bytes() < short.size_bytes() * 4


def test_suffix_linkage_enforced(chain):
    headers, pow_engine = chain
    proof = NipopowProver(headers, pow_engine).bootstrap_proof(k=3)
    broken = replace(proof, suffix=(proof.suffix[0], proof.suffix[2]))
    assert not NipopowVerifier(pow_engine).verify(broken)


def test_genesis_anchor_enforced(chain):
    headers, pow_engine = chain
    proof = NipopowProver(headers, pow_engine).bootstrap_proof()
    unanchored = replace(proof, prefix=proof.prefix[1:])
    assert not NipopowVerifier(pow_engine).verify(unanchored)


def test_invalid_pow_in_prefix_rejected(chain):
    headers, pow_engine = chain
    proof = NipopowProver(headers, pow_engine).bootstrap_proof()
    fake = replace(proof.prefix[1], nonce=proof.prefix[1].nonce + 1)
    if pow_engine.check(fake):  # unlucky re-solve; perturb differently
        fake = replace(fake, timestamp=fake.timestamp + 1)
    tampered = replace(proof, prefix=(proof.prefix[0], fake) + proof.prefix[2:])
    assert not NipopowVerifier(pow_engine).verify(tampered)


def test_out_of_order_prefix_rejected(chain):
    headers, pow_engine = chain
    proof = NipopowProver(headers, pow_engine).bootstrap_proof()
    shuffled = replace(
        proof, prefix=(proof.prefix[0],) + proof.prefix[1:][::-1]
    )
    assert not NipopowVerifier(pow_engine).verify(shuffled)


def test_empty_chain_rejected():
    with pytest.raises(BlockValidationError):
        NipopowProver([], ProofOfWork(4))


def test_tiny_chain(chain):
    headers, pow_engine = chain
    proof = NipopowProver(headers[:2], pow_engine).bootstrap_proof(k=1)
    assert NipopowVerifier(pow_engine).verify(proof)
