"""Supervised issuer restart, observable end-to-end over the bus.

The acceptance scenario: an issuer dies mid-``certify_range`` (crash
injected at the batch-certification boundary), the supervisor restores
it from the durable archive with bounded backoff, and the same remote
client — which never saw anything but timeouts — completes its calls
against the restarted issuer *without re-attestation* (sealed key keeps
``pk_enc`` stable, cached attestation report stays valid).
"""

import pytest

from repro.chain import ChainBuilder
from repro.chain.genesis import make_genesis
from repro.chain.transaction import sign_transaction
from repro.core import (
    IssuerService,
    ClientConfig,
    connect,
    compute_expected_measurement,
)
from repro.core.recovery import DurableIssuer, recover_issuer
from repro.crypto import generate_keypair
from repro.fault.crashpoints import crash_armed
from repro.net import IssuerSupervisor, MessageBus, RestartPolicy, RetryPolicy
from repro.net.rpc import RpcClient
from repro.query import HistoryQuery, QueryService
from repro.query.indexes import AccountHistoryIndexSpec
from repro.query.provider import QueryServiceProvider
from repro.sgx.attestation import AttestationService
from repro.sgx.platform import SGXPlatform
from repro.storage import ChainArchive
from tests.conftest import fresh_vm

NETWORK = "supervised"


@pytest.fixture(scope="module")
def chain():
    user = generate_keypair(b"supervised-user")
    builder = ChainBuilder(difficulty_bits=4, network=NETWORK)
    nonce = [0]
    for round_ in range(8):
        builder.add_block([
            sign_transaction(
                user.private, nonce[0], "kvstore", "put",
                ("acct1", f"v{round_}"),
            )
        ])
        nonce[0] += 1
    return builder


@pytest.fixture()
def world(chain, tmp_path):
    spec = AccountHistoryIndexSpec(name="history")
    ias = AttestationService(seed=b"supervised-ias")
    platform = SGXPlatform(seed=b"supervised-platform")
    archive = ChainArchive(tmp_path / "ci.wal")
    genesis, state = make_genesis(network=NETWORK)
    durable = DurableIssuer.create(
        archive, genesis, state, fresh_vm(), chain.pow,
        index_specs=[spec], platform=platform, ias=ias,
        key_seed=b"supervised-enclave", checkpoint_interval=3,
    )
    # Certify half the chain before the network comes up.
    for block in chain.blocks[1:5]:
        durable.process_block(block)

    sp_genesis, sp_state = make_genesis(network=NETWORK)
    provider = QueryServiceProvider(
        sp_genesis, sp_state, fresh_vm(), chain.pow, [spec]
    )
    for block in chain.blocks[1:]:
        provider.ingest_block(block)

    def restore():
        genesis2, state2 = make_genesis(network=NETWORK)
        return recover_issuer(
            archive, genesis2, state2, fresh_vm(), chain.pow,
            index_specs=[spec], platform=platform, ias=ias,
            checkpoint_interval=3,
        )

    measurement = compute_expected_measurement(
        genesis.header.header_hash(), ias.public_key, fresh_vm(),
        chain.pow.difficulty_bits, {spec.name: spec},
    )
    return {
        "chain": chain,
        "durable": durable,
        "archive": archive,
        "provider": provider,
        "restore": restore,
        "measurement": measurement,
        "ias": ias,
    }


def make_network(world):
    bus = MessageBus(default_latency_ms=10.0)
    service = IssuerService(bus, "ci", world["durable"])
    supervisor = IssuerSupervisor(
        service, world["restore"],
        policy=RestartPolicy(max_attempts=3, backoff_base_ms=40.0),
    )
    QueryService(bus, "sp", world["provider"])
    client = connect(ClientConfig(
        measurement=world["measurement"],
        ias_public_key=world["ias"].public_key,
        bus=bus, name="client",
        issuers=("ci",), providers=("sp",),
        policy=RetryPolicy(
            timeout_ms=150.0, max_attempts=4, backoff_base_ms=20.0
        ),
    ))
    return bus, service, supervisor, client


@pytest.mark.parametrize(
    "point", ["issuer.certify_staged.post", "issuer.stage_block.post",
              "durable.append.pre_wal"]
)
def test_crash_mid_certify_range_supervised_restart(world, point):
    bus, service, supervisor, client = make_network(world)
    client.bootstrap()
    assert client.latest_header.height == 4
    assert len(client.client._verified_reports) == 1
    pk_before = service.issuer.pk_enc.to_bytes()

    # A miner submits the rest of the chain; the issuer dies mid-call.
    miner = RpcClient(
        bus, "miner",
        policy=RetryPolicy(timeout_ms=200.0, max_attempts=5,
                           backoff_base_ms=30.0),
    )
    blocks = world["chain"].blocks[5:]
    with crash_armed(point) as schedule:
        tips = miner.call("ci", "certify_range", tuple(blocks))
    assert schedule.fired
    assert supervisor.crashes == 1
    assert supervisor.restarts == 1
    assert supervisor.gave_up is False
    # The retried call completed against the *restored* issuer.
    assert [tip.header.height for tip in tips] == [5, 6, 7, 8]
    assert service.issuer is not world["durable"]  # swapped by restore

    # Same pk_enc across the restart: the sealed key survived.
    assert service.issuer.pk_enc.to_bytes() == pk_before

    # The client completes a query against the restarted issuer without
    # re-attestation: the cached report verification still matches.
    client.sync()
    assert client.latest_header.height == 8
    request = HistoryQuery(index="history", account="acct1", t_from=1, t_to=8)
    answer = client.query(request)
    assert client.client.verify_answer(request, answer)
    assert len(client.client._verified_reports) == 1  # no re-attestation


def test_certify_range_idempotent_across_crash(world):
    """Certificates that were durable before the crash are answered from
    the archive on retry — byte-identical, not re-issued diverging."""
    bus, service, supervisor, client = make_network(world)
    blocks = world["chain"].blocks[5:]
    miner = RpcClient(
        bus, "miner",
        policy=RetryPolicy(timeout_ms=200.0, max_attempts=5,
                           backoff_base_ms=30.0),
    )
    # Crash *after* the WAL append of the first new block: height 5 is
    # durable, the response is lost, the retry re-sends 5..8.
    with crash_armed("wal.append.post_fsync", hit=2) as schedule:
        tips = miner.call("ci", "certify_range", tuple(blocks))
    assert schedule.fired
    assert [tip.header.height for tip in tips] == [5, 6, 7, 8]
    # The archive holds exactly one certificate per height, and the
    # served tips match it byte for byte.
    contents = world["archive"].load()
    heights = [entry.block.header.height for entry in contents.entries]
    assert heights == [1, 2, 3, 4, 5, 6, 7, 8]
    by_height = {
        entry.block.header.height: entry for entry in contents.entries
    }
    for tip in tips:
        assert (
            by_height[tip.header.height].certificate.encode()
            == tip.certificate.encode()
        )


def test_supervisor_gives_up_after_bounded_attempts(world, tmp_path):
    bus, service, supervisor, client = make_network(world)

    calls = []

    def failing_restore():
        calls.append(1)
        raise RuntimeError("archive volume offline")

    supervisor.restore = failing_restore
    miner = RpcClient(
        bus, "miner",
        policy=RetryPolicy(timeout_ms=150.0, max_attempts=2,
                           backoff_base_ms=20.0),
    )
    from repro.errors import RpcTimeoutError

    with crash_armed("issuer.certify_staged.pre"):
        with pytest.raises(RpcTimeoutError):
            miner.call("ci", "certify_range", tuple(world["chain"].blocks[5:]))
    bus.run_for(5_000.0)  # let every scheduled restart attempt fire
    assert supervisor.gave_up
    assert len(calls) == 3  # RestartPolicy(max_attempts=3)
    assert service.server.paused  # endpoint stays dark
