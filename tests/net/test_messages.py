"""Network message types."""

from repro.net.messages import BlockAnnouncement, CertificateAnnouncement


def test_block_announcement_topic(kv_chain):
    message = BlockAnnouncement(block=kv_chain.blocks[1])
    assert message.topic == "blocks"
    assert message.block.header.height == 1


def test_certificate_announcement_topic(certified_setup):
    certified = certified_setup["issuer"].certified[-1]
    message = CertificateAnnouncement(
        header=certified.block.header,
        certificate=certified.certificate,
        index_certificates=certified.index_certificates,
        index_roots=certified.index_roots,
    )
    assert message.topic == "certificates"
    assert set(message.index_certificates) == {"history", "keyword"}


def test_certificate_announcement_defaults(certified_setup):
    certified = certified_setup["issuer"].certified[-1]
    message = CertificateAnnouncement(
        header=certified.block.header, certificate=certified.certificate
    )
    assert message.index_certificates == {}
    assert message.index_roots == {}
