"""The simulated message bus."""

import pytest

from repro.errors import ReproError
from repro.net.bus import MessageBus, NetworkNode


@pytest.fixture()
def bus():
    return MessageBus(default_latency_ms=10.0)


def test_publish_reaches_subscribers(bus):
    a, b, c = (bus.join(NetworkNode(name)) for name in "abc")
    bus.subscribe("b", "news")
    bus.subscribe("c", "news")
    bus.publish("a", "news", "hello")
    assert bus.run_until_idle() == 2
    assert b.received == ["hello"]
    assert c.received == ["hello"]


def test_sender_does_not_receive_own_message(bus):
    a = bus.join(NetworkNode("a"))
    bus.subscribe("a", "news")
    bus.publish("a", "news", "echo?")
    bus.run_until_idle()
    assert a.received == []


def test_handlers_invoked(bus):
    bus.join(NetworkNode("a"))
    b = bus.join(NetworkNode("b"))
    seen = []
    b.on("news", seen.append)
    bus.subscribe("b", "news")
    bus.publish("a", "news", 42)
    bus.run_until_idle()
    assert seen == [42]


def test_latency_ordering(bus):
    bus.join(NetworkNode("a"))
    b = bus.join(NetworkNode("b"))
    bus.subscribe("b", "t")
    bus.set_latency("a", "b", 100.0)
    bus.publish("a", "t", "slow")
    bus.set_latency("a", "b", 1.0)
    bus.publish("a", "t", "fast")
    bus.run_until_idle()
    assert b.received == ["fast", "slow"]
    assert bus.clock_ms == 100.0


def test_cascading_publishes(bus):
    bus.join(NetworkNode("a"))
    relay = bus.join(NetworkNode("relay"))
    sink = bus.join(NetworkNode("sink"))
    relay.on("in", lambda message: bus.publish("relay", "out", f"relayed:{message}"))
    bus.subscribe("relay", "in")
    bus.subscribe("sink", "out")
    bus.publish("a", "in", "ping")
    assert bus.run_until_idle() == 2
    assert sink.received == ["relayed:ping"]


def test_duplicate_names_rejected(bus):
    bus.join(NetworkNode("a"))
    with pytest.raises(ReproError):
        bus.join(NetworkNode("a"))


def test_subscribe_unknown_node_rejected(bus):
    with pytest.raises(ReproError):
        bus.subscribe("ghost", "t")


def test_unsubscribed_topic_drops(bus):
    bus.join(NetworkNode("a"))
    b = bus.join(NetworkNode("b"))
    bus.publish("a", "untracked", "x")
    assert bus.run_until_idle() == 0
    assert b.received == []


def test_fifo_tie_break_at_equal_timestamps(bus):
    bus.join(NetworkNode("a"))
    b = bus.join(NetworkNode("b"))
    bus.subscribe("b", "t")
    for index in range(10):  # identical latency -> identical timestamps
        bus.publish("a", "t", index)
    bus.run_until_idle()
    assert b.received == list(range(10))  # enqueue order preserved


def test_per_link_latency_overrides_fan_out(bus):
    bus.join(NetworkNode("a"))
    near = bus.join(NetworkNode("near"))
    far = bus.join(NetworkNode("far"))
    bus.subscribe("near", "t")
    bus.subscribe("far", "t")
    bus.set_latency("a", "far", 200.0)
    arrivals = []
    near.on("t", lambda m: arrivals.append(("near", bus.clock_ms)))
    far.on("t", lambda m: arrivals.append(("far", bus.clock_ms)))
    bus.publish("a", "t", "fanout")
    bus.run_until_idle()
    assert arrivals == [("near", 10.0), ("far", 200.0)]


def test_send_is_point_to_point(bus):
    bus.join(NetworkNode("a"))
    b = bus.join(NetworkNode("b"))
    c = bus.join(NetworkNode("c"))
    bus.subscribe("c", "t")  # subscription must not matter for send()
    bus.send("a", "b", "t", "direct")
    bus.run_until_idle()
    assert b.received == ["direct"]
    assert c.received == []


def test_send_to_unknown_node_rejected(bus):
    bus.join(NetworkNode("a"))
    with pytest.raises(ReproError):
        bus.send("a", "ghost", "t", "x")


def test_schedule_fires_at_virtual_deadline(bus):
    fired = []
    bus.schedule(25.0, lambda: fired.append(bus.clock_ms))
    bus.schedule(5.0, lambda: fired.append(bus.clock_ms))
    assert bus.run_until_idle() == 2
    assert fired == [5.0, 25.0]


def test_run_for_respects_window_and_advances_clock(bus):
    bus.join(NetworkNode("a"))
    b = bus.join(NetworkNode("b"))
    bus.subscribe("b", "t")
    bus.set_latency("a", "b", 30.0)
    bus.publish("a", "t", "in-window")
    bus.set_latency("a", "b", 80.0)
    bus.publish("a", "t", "beyond")
    assert bus.run_for(50.0) == 1  # only the 30ms delivery is due
    assert b.received == ["in-window"]
    assert bus.clock_ms == 50.0  # idles forward to the window's end
    assert bus.run_for(50.0) == 1
    assert b.received == ["in-window", "beyond"]


def test_step_never_advances_past_deadline(bus):
    bus.join(NetworkNode("a"))
    b = bus.join(NetworkNode("b"))
    bus.subscribe("b", "t")
    bus.set_latency("a", "b", 40.0)
    bus.publish("a", "t", "later")
    assert not bus.step(deadline_ms=30.0)
    assert bus.clock_ms == 0.0
    assert bus.step(deadline_ms=40.0)
    assert b.received == ["later"]


def test_wait_until_advances_without_delivering(bus):
    bus.join(NetworkNode("a"))
    b = bus.join(NetworkNode("b"))
    bus.subscribe("b", "t")
    bus.publish("a", "t", "pending")
    bus.wait_until(500.0)
    assert bus.clock_ms == 500.0
    assert b.received == []  # still queued
    bus.run_until_idle()
    assert b.received == ["pending"]


def test_cascades_inside_run_for_window(bus):
    bus.join(NetworkNode("a"))
    relay = bus.join(NetworkNode("relay"))
    sink = bus.join(NetworkNode("sink"))
    relay.on("in", lambda m: bus.publish("relay", "out", f"relayed:{m}"))
    bus.subscribe("relay", "in")
    bus.subscribe("sink", "out")
    bus.publish("a", "in", "ping")
    assert bus.run_for(100.0) == 2  # hop one at 10ms, hop two at 20ms
    assert sink.received == ["relayed:ping"]
    assert bus.clock_ms == 100.0


def test_received_log_is_bounded():
    node = NetworkNode("n", record_limit=3)
    for index in range(10):
        node.deliver("t", index)
    assert node.received == [7, 8, 9]  # oldest dropped first
    assert node.delivered_count == 10


def test_received_log_can_be_disabled_or_unbounded():
    quiet = NetworkNode("q", record_limit=0)
    full = NetworkNode("f", record_limit=None)
    for index in range(300):
        quiet.deliver("t", index)
        full.deliver("t", index)
    assert quiet.received == []
    assert quiet.delivered_count == 300
    assert full.received == list(range(300))


def test_default_record_limit_bounds_growth(bus):
    node = NetworkNode("n")
    for index in range(1000):
        node.deliver("t", index)
    assert len(node.received) == 256
    assert node.received[-1] == 999
