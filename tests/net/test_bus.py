"""The simulated message bus."""

import pytest

from repro.errors import ReproError
from repro.net.bus import MessageBus, NetworkNode


@pytest.fixture()
def bus():
    return MessageBus(default_latency_ms=10.0)


def test_publish_reaches_subscribers(bus):
    a, b, c = (bus.join(NetworkNode(name)) for name in "abc")
    bus.subscribe("b", "news")
    bus.subscribe("c", "news")
    bus.publish("a", "news", "hello")
    assert bus.run_until_idle() == 2
    assert b.received == ["hello"]
    assert c.received == ["hello"]


def test_sender_does_not_receive_own_message(bus):
    a = bus.join(NetworkNode("a"))
    bus.subscribe("a", "news")
    bus.publish("a", "news", "echo?")
    bus.run_until_idle()
    assert a.received == []


def test_handlers_invoked(bus):
    bus.join(NetworkNode("a"))
    b = bus.join(NetworkNode("b"))
    seen = []
    b.on("news", seen.append)
    bus.subscribe("b", "news")
    bus.publish("a", "news", 42)
    bus.run_until_idle()
    assert seen == [42]


def test_latency_ordering(bus):
    bus.join(NetworkNode("a"))
    b = bus.join(NetworkNode("b"))
    bus.subscribe("b", "t")
    bus.set_latency("a", "b", 100.0)
    bus.publish("a", "t", "slow")
    bus.set_latency("a", "b", 1.0)
    bus.publish("a", "t", "fast")
    bus.run_until_idle()
    assert b.received == ["fast", "slow"]
    assert bus.clock_ms == 100.0


def test_cascading_publishes(bus):
    bus.join(NetworkNode("a"))
    relay = bus.join(NetworkNode("relay"))
    sink = bus.join(NetworkNode("sink"))
    relay.on("in", lambda message: bus.publish("relay", "out", f"relayed:{message}"))
    bus.subscribe("relay", "in")
    bus.subscribe("sink", "out")
    bus.publish("a", "in", "ping")
    assert bus.run_until_idle() == 2
    assert sink.received == ["relayed:ping"]


def test_duplicate_names_rejected(bus):
    bus.join(NetworkNode("a"))
    with pytest.raises(ReproError):
        bus.join(NetworkNode("a"))


def test_subscribe_unknown_node_rejected(bus):
    with pytest.raises(ReproError):
        bus.subscribe("ghost", "t")


def test_unsubscribed_topic_drops(bus):
    bus.join(NetworkNode("a"))
    b = bus.join(NetworkNode("b"))
    bus.publish("a", "untracked", "x")
    assert bus.run_until_idle() == 0
    assert b.received == []
