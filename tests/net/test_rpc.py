"""Request/response RPC: timeouts, retries, backoff, corruption."""

from dataclasses import replace

import pytest

from repro.errors import (
    QueryError,
    RemoteCallError,
    ResponseIntegrityError,
    RpcTimeoutError,
)
from repro.net.bus import MessageBus, NetworkNode
from repro.net.faults import FaultInjector, LinkFaults
from repro.net.rpc import RetryPolicy, RpcClient, RpcServer, rpc_topic


@pytest.fixture()
def bus():
    return MessageBus(default_latency_ms=10.0)


@pytest.fixture()
def echo_server(bus):
    def fail(argument):
        raise QueryError("no such index")

    server = RpcServer(bus, "server")
    server.register("echo", lambda argument: argument)
    server.register("fail", fail)
    return server


@pytest.fixture()
def client(bus):
    return RpcClient(
        bus, "client",
        RetryPolicy(timeout_ms=100.0, max_attempts=3, backoff_base_ms=10.0),
    )


def test_happy_path_round_trip(bus, echo_server, client):
    result = client.call("server", "echo", {"k": (1, b"\x02")})
    assert result == {"k": (1, b"\x02")}
    assert echo_server.requests_served == 1
    assert client.timeouts == 0
    assert bus.clock_ms == pytest.approx(20.0)  # one RTT


def test_remote_library_error_is_reraised_locally(bus, echo_server, client):
    with pytest.raises(QueryError, match="no such index"):
        client.call("server", "fail")


def test_unknown_method_maps_to_remote_call_error(bus, echo_server, client):
    with pytest.raises(RemoteCallError, match="unknown method"):
        client.call("server", "nope")


def test_unknown_error_type_degrades_to_remote_call_error(bus, client):
    server = RpcServer(bus, "server")

    class Weird(QueryError):
        pass

    def boom(argument):
        raise Weird("strange")

    server.register("boom", boom)
    with pytest.raises(RemoteCallError, match="strange"):
        client.call("server", "boom")


def test_permanent_failure_times_out_after_bounded_attempts(bus, client):
    bus.join(NetworkNode("server"))  # joined but serves nothing
    before = bus.clock_ms
    with pytest.raises(RpcTimeoutError, match="3 attempts"):
        client.call("server", "echo", 1)
    assert client.timeouts == 3
    # 3 timeouts of 100ms plus two backoff sleeps of 10ms and 20ms.
    assert bus.clock_ms - before == pytest.approx(330.0)


def test_retry_then_succeed_after_outage_heals(bus, echo_server, client):
    injector = FaultInjector(seed=1)
    injector.set_link("client", "server", LinkFaults(drop_rate=1.0))
    bus.install_faults(injector)
    # The link heals while the client is mid-backoff (virtual time 150ms
    # falls inside the first backoff window after the 100ms timeout).
    bus.schedule(105.0, lambda: injector.clear_link("client", "server"))
    result = client.call("server", "echo", "eventually")
    assert result == "eventually"
    assert client.timeouts == 1
    assert echo_server.requests_served == 1


def test_corrupted_response_raises_integrity_error(bus, echo_server, client):
    injector = FaultInjector(seed=2)
    injector.set_link(
        "server", "client",
        LinkFaults(
            corrupt_rate=1.0,
            corrupter=lambda m, rng: replace(m, payload=b"\xff junk"),
        ),
    )
    bus.install_faults(injector)
    with pytest.raises(ResponseIntegrityError, match="corrupted in flight"):
        client.call("server", "echo", "tamper me")


def test_corrupted_request_is_dropped_by_server(bus, echo_server, client):
    injector = FaultInjector(seed=3)
    injector.set_link(
        "client", "server",
        LinkFaults(
            corrupt_rate=1.0,
            corrupter=lambda m, rng: replace(m, payload=b"\xff junk"),
        ),
    )
    bus.install_faults(injector)
    with pytest.raises(RpcTimeoutError):
        client.call("server", "echo", 1)
    assert echo_server.requests_dropped == 3
    assert echo_server.requests_served == 0


def test_duplicated_responses_are_ignored(bus, echo_server, client):
    injector = FaultInjector(seed=4)
    injector.set_link("server", "client", LinkFaults(duplicate_rate=1.0))
    bus.install_faults(injector)
    assert client.call("server", "echo", "dup") == "dup"
    bus.run_until_idle()  # deliver the straggler copy
    assert client.duplicates_ignored == 1


def test_late_response_from_timed_out_attempt_is_ignored(bus, echo_server, client):
    injector = FaultInjector(seed=5)
    # Only the *first* response is delayed beyond the 100ms attempt
    # timeout: the link heals right after it is enqueued.
    injector.set_link("server", "client", LinkFaults(extra_delay_ms=150.0))
    bus.schedule(15.0, lambda: injector.clear_link("server", "client"))
    bus.install_faults(injector)
    result = client.call("server", "echo", "slow")
    assert result == "slow"
    assert client.timeouts == 1
    bus.run_until_idle()  # the stale first reply finally lands
    assert client.duplicates_ignored == 1


def test_concurrent_clients_share_the_bus(bus, echo_server):
    first = RpcClient(bus, "c1", RetryPolicy(timeout_ms=100.0))
    second = RpcClient(bus, "c2", RetryPolicy(timeout_ms=100.0))
    assert first.call("server", "echo", "one") == "one"
    assert second.call("server", "echo", "two") == "two"
    assert echo_server.requests_served == 2


def test_rpc_topic_namespacing():
    assert rpc_topic("sp1") == "rpc:sp1"


def test_per_call_policy_override(bus, echo_server, client):
    bus.set_latency("client", "server", 500.0)
    with pytest.raises(RpcTimeoutError, match="1 attempts"):
        client.call(
            "server", "echo", 1,
            policy=RetryPolicy(timeout_ms=50.0, max_attempts=1),
        )
