"""Request/response RPC: timeouts, retries, backoff, corruption."""

from dataclasses import replace

import pytest

from repro.errors import (
    QueryError,
    RemoteCallError,
    ResponseIntegrityError,
    RpcTimeoutError,
)
from repro.net.bus import MessageBus, NetworkNode
from repro.net.faults import FaultInjector, LinkFaults
from repro.net.rpc import RetryPolicy, RpcClient, RpcServer, rpc_topic


@pytest.fixture()
def bus():
    return MessageBus(default_latency_ms=10.0)


@pytest.fixture()
def echo_server(bus):
    def fail(argument):
        raise QueryError("no such index")

    server = RpcServer(bus, "server")
    server.register("echo", lambda argument: argument)
    server.register("fail", fail)
    return server


@pytest.fixture()
def client(bus):
    return RpcClient(
        bus, "client",
        RetryPolicy(timeout_ms=100.0, max_attempts=3, backoff_base_ms=10.0),
    )


def test_happy_path_round_trip(bus, echo_server, client):
    result = client.call("server", "echo", {"k": (1, b"\x02")})
    assert result == {"k": (1, b"\x02")}
    assert echo_server.requests_served == 1
    assert client.timeouts == 0
    assert bus.clock_ms == pytest.approx(20.0)  # one RTT


def test_remote_library_error_is_reraised_locally(bus, echo_server, client):
    with pytest.raises(QueryError, match="no such index"):
        client.call("server", "fail")


def test_unknown_method_maps_to_remote_call_error(bus, echo_server, client):
    with pytest.raises(RemoteCallError, match="unknown method"):
        client.call("server", "nope")


def test_unregistered_subclass_degrades_to_taxonomic_ancestor(bus, client):
    """A subclass minted after this build inherits its parent's wire
    code, so the client maps it back to the nearest known ancestor."""
    server = RpcServer(bus, "server")

    class Weird(QueryError):
        pass

    def boom(argument):
        raise Weird("strange")

    server.register("boom", boom)
    with pytest.raises(QueryError, match="strange") as excinfo:
        client.call("server", "boom")
    assert type(excinfo.value) is QueryError


def test_unknown_wire_code_degrades_to_remote_call_error(bus, client):
    from repro.net import wire
    from repro.net.rpc import RpcResponse

    node = bus.join(NetworkNode("oddball"))

    def reply(message):
        bus.send(
            "oddball", message.sender, rpc_topic(message.sender),
            RpcResponse(
                request_id=message.request_id, sender="oddball",
                ok=False, payload=wire.encode("from the future"),
                code="galaxy.brain",
            ),
        )

    node.on(rpc_topic("oddball"), reply)
    with pytest.raises(RemoteCallError, match="from the future"):
        client.call("oddball", "anything")


def test_retryable_remote_error_is_retried(bus, client):
    """A transport-class failure reported by the server (e.g. service
    restarting) is retried with backoff instead of raised on first
    sight — unlike terminal errors such as QueryError."""
    from repro.errors import ServiceUnavailableError

    attempts = []

    def flaky(argument):
        attempts.append(1)
        if len(attempts) < 2:
            raise ServiceUnavailableError("warming up")
        return "ready"

    server = RpcServer(bus, "server")
    server.register("flaky", flaky)
    assert client.call("server", "flaky") == "ready"
    assert len(attempts) == 2


def test_retryable_remote_error_raised_when_attempts_exhaust(bus, client):
    from repro.errors import ServiceUnavailableError

    def always_down(argument):
        raise ServiceUnavailableError("still warming up")

    server = RpcServer(bus, "server")
    server.register("down", always_down)
    with pytest.raises(ServiceUnavailableError, match="warming up"):
        client.call("server", "down")


def test_response_carries_typed_code(bus, echo_server, client):
    with pytest.raises(QueryError) as excinfo:
        client.call("server", "fail")
    assert excinfo.value.code == "query"
    assert not excinfo.value.retryable


def test_service_time_models_a_busy_worker(bus):
    """With service_time_ms set, replies queue behind one another: two
    back-to-back requests complete ~service_time apart, not together."""
    server = RpcServer(bus, "server", service_time_ms=40.0)
    server.register("echo", lambda argument: argument)
    client = RpcClient(bus, "client", RetryPolicy(timeout_ms=500.0))
    first = client.begin("server", "echo", 1)
    second = client.begin("server", "echo", 2)
    bus.run_until_idle()
    assert client.has_response(first) and client.has_response(second)
    # request lands at 10ms; first reply leaves at 50, second at 90.
    assert bus.clock_ms == pytest.approx(100.0)
    assert server.busy_until_ms == pytest.approx(90.0)


def test_permanent_failure_times_out_after_bounded_attempts(bus, client):
    bus.join(NetworkNode("server"))  # joined but serves nothing
    before = bus.clock_ms
    with pytest.raises(RpcTimeoutError, match="3 attempts"):
        client.call("server", "echo", 1)
    assert client.timeouts == 3
    # 3 timeouts of 100ms plus two backoff sleeps of 10ms and 20ms.
    assert bus.clock_ms - before == pytest.approx(330.0)


def test_retry_then_succeed_after_outage_heals(bus, echo_server, client):
    injector = FaultInjector(seed=1)
    injector.set_link("client", "server", LinkFaults(drop_rate=1.0))
    bus.install_faults(injector)
    # The link heals while the client is mid-backoff (virtual time 150ms
    # falls inside the first backoff window after the 100ms timeout).
    bus.schedule(105.0, lambda: injector.clear_link("client", "server"))
    result = client.call("server", "echo", "eventually")
    assert result == "eventually"
    assert client.timeouts == 1
    assert echo_server.requests_served == 1


def test_corrupted_response_raises_integrity_error(bus, echo_server, client):
    injector = FaultInjector(seed=2)
    injector.set_link(
        "server", "client",
        LinkFaults(
            corrupt_rate=1.0,
            corrupter=lambda m, rng: replace(m, payload=b"\xff junk"),
        ),
    )
    bus.install_faults(injector)
    with pytest.raises(ResponseIntegrityError, match="corrupted in flight"):
        client.call("server", "echo", "tamper me")


def test_corrupted_request_is_dropped_by_server(bus, echo_server, client):
    injector = FaultInjector(seed=3)
    injector.set_link(
        "client", "server",
        LinkFaults(
            corrupt_rate=1.0,
            corrupter=lambda m, rng: replace(m, payload=b"\xff junk"),
        ),
    )
    bus.install_faults(injector)
    with pytest.raises(RpcTimeoutError):
        client.call("server", "echo", 1)
    assert echo_server.requests_dropped == 3
    assert echo_server.requests_served == 0


def test_duplicated_responses_are_ignored(bus, echo_server, client):
    injector = FaultInjector(seed=4)
    injector.set_link("server", "client", LinkFaults(duplicate_rate=1.0))
    bus.install_faults(injector)
    assert client.call("server", "echo", "dup") == "dup"
    bus.run_until_idle()  # deliver the straggler copy
    assert client.duplicates_ignored == 1


def test_late_response_from_timed_out_attempt_is_ignored(bus, echo_server, client):
    injector = FaultInjector(seed=5)
    # Only the *first* response is delayed beyond the 100ms attempt
    # timeout: the link heals right after it is enqueued.
    injector.set_link("server", "client", LinkFaults(extra_delay_ms=150.0))
    bus.schedule(15.0, lambda: injector.clear_link("server", "client"))
    bus.install_faults(injector)
    result = client.call("server", "echo", "slow")
    assert result == "slow"
    assert client.timeouts == 1
    bus.run_until_idle()  # the stale first reply finally lands
    assert client.duplicates_ignored == 1


def test_concurrent_clients_share_the_bus(bus, echo_server):
    first = RpcClient(bus, "c1", RetryPolicy(timeout_ms=100.0))
    second = RpcClient(bus, "c2", RetryPolicy(timeout_ms=100.0))
    assert first.call("server", "echo", "one") == "one"
    assert second.call("server", "echo", "two") == "two"
    assert echo_server.requests_served == 2


def test_rpc_topic_namespacing():
    assert rpc_topic("sp1") == "rpc:sp1"


def test_per_call_policy_override(bus, echo_server, client):
    bus.set_latency("client", "server", 500.0)
    with pytest.raises(RpcTimeoutError, match="1 attempts"):
        client.call(
            "server", "echo", 1,
            policy=RetryPolicy(timeout_ms=50.0, max_attempts=1),
        )


def test_latency_trackers_are_bounded(bus, echo_server, client):
    client.LATENCY_TRACKERS_LIMIT = 3
    for i in range(8):
        client._track_latency(f"endpoint-{i}", 10.0)
    assert len(client.latency) == 3
    # LRU: most recently observed endpoints survive.
    assert set(client.latency) == {
        "endpoint-5", "endpoint-6", "endpoint-7",
    }
    client._track_latency("endpoint-6", 12.0)
    client._track_latency("endpoint-8", 11.0)
    assert "endpoint-6" in client.latency
    assert "endpoint-5" not in client.latency
