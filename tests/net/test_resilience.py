"""Overload-resilience primitives and their RPC/gateway integration.

Unit coverage for :mod:`repro.net.resilience` — deadline sanitizing and
per-hop shrinking, retry-after clamping, the CoDel-style admission
hint, the circuit-breaker state machine, latency tracking with adaptive
timeouts, and the hedge policy — plus the end-to-end behaviours the
stacks compose them into: servers refusing doomed or excess work with
zero provider effort, clients honoring (clamped) backpressure and
desynchronizing their retries, and the bounded response bookkeeping
that keeps an abandoning caller's memory flat.
"""

from __future__ import annotations

import math

import pytest

from repro.errors import (
    DeadlineExceededError,
    NetworkError,
    OverloadedError,
    RemoteCallError,
    code_for,
    error_for_code,
    is_retryable_code,
)
from repro.net import wire
from repro.net.bus import MessageBus, NetworkNode
from repro.net.gateway import HealthPolicy, QueryGateway
from repro.net.resilience import (
    NO_DEADLINE,
    RETRY_AFTER_CAP_MS,
    AdmissionPolicy,
    CircuitBreaker,
    CircuitBreakerPolicy,
    HedgePolicy,
    LatencyTracker,
    clamp_retry_after,
    remaining_ms,
    sanitize_deadline,
    shrink_deadline,
)
from repro.net.rpc import RetryPolicy, RpcClient, RpcResponse, RpcServer, rpc_topic


@pytest.fixture()
def bus():
    return MessageBus(default_latency_ms=5.0)


# -- deadline helpers ---------------------------------------------------------


def test_sanitize_deadline_passes_usable_values():
    assert sanitize_deadline(123.5) == 123.5
    assert sanitize_deadline(1) == 1.0


@pytest.mark.parametrize(
    "garbage",
    [NO_DEADLINE, -1.0, 0, float("nan"), float("inf"), float("-inf"),
     "soon", None, True, b"\x01", [100.0]],
)
def test_sanitize_deadline_degrades_garbage_to_no_deadline(garbage):
    assert sanitize_deadline(garbage) == NO_DEADLINE


def test_shrink_deadline_hands_downstream_a_smaller_budget():
    assert shrink_deadline(100.0, 10.0) == 90.0
    # Shrinking below zero still yields a (tiny) positive deadline —
    # "already expired", never "no deadline".
    assert 0.0 < shrink_deadline(5.0, 10.0) < 1.0
    assert shrink_deadline(NO_DEADLINE, 10.0) == NO_DEADLINE
    assert shrink_deadline(float("nan"), 10.0) == NO_DEADLINE


def test_remaining_ms_is_infinite_without_a_deadline():
    assert remaining_ms(NO_DEADLINE, 50.0) == math.inf
    assert remaining_ms(80.0, 50.0) == 30.0
    assert remaining_ms(40.0, 50.0) == -10.0


# -- retry-after clamping -----------------------------------------------------


def test_clamp_retry_after_caps_hostile_hints():
    assert clamp_retry_after(25.0) == 25.0
    assert clamp_retry_after(10**12) == RETRY_AFTER_CAP_MS
    assert clamp_retry_after(float("inf")) == 0.0
    assert clamp_retry_after(float("nan")) == 0.0
    assert clamp_retry_after(-5.0) == 0.0
    assert clamp_retry_after("forever") == 0.0
    assert clamp_retry_after(True) == 0.0


def test_admission_hint_is_floored_and_capped():
    policy = AdmissionPolicy(
        shed_delay_ms=50.0, retry_after_min_ms=5.0, retry_after_cap_ms=100.0
    )
    # Barely over the threshold: floored.
    assert policy.retry_after_hint(51.0, 1.0) == 5.0
    # Deep standing queue: capped.
    assert policy.retry_after_hint(10_000.0, 20.0) == 100.0
    # In between: the drain-back estimate itself.
    assert policy.retry_after_hint(80.0, 20.0) == 50.0


# -- circuit breaker state machine --------------------------------------------


def test_breaker_trips_after_failure_streak_and_recloses():
    policy = CircuitBreakerPolicy(
        failure_trip=3, open_base_ms=100.0, jitter=0.0
    )
    breaker = CircuitBreaker(policy, seed="sp1")
    for _ in range(2):
        breaker.record_failure(0.0)
    assert breaker.state == CircuitBreaker.CLOSED
    breaker.record_failure(0.0)
    assert breaker.state == CircuitBreaker.OPEN
    assert breaker.trips == 1
    # Blocked until the reopen time, then a half-open probe is allowed.
    assert not breaker.permits(50.0)
    assert breaker.permits(100.0)
    breaker.on_dispatch(100.0)
    assert breaker.state == CircuitBreaker.HALF_OPEN
    assert not breaker.permits(100.0)  # probe budget spent
    breaker.record_success()
    assert breaker.state == CircuitBreaker.CLOSED
    assert breaker.closes == 1


def test_overload_sheds_trip_the_breaker_faster_than_failures():
    policy = CircuitBreakerPolicy(failure_trip=5, overload_trip=2, jitter=0.0)
    breaker = CircuitBreaker(policy, seed="sp1")
    breaker.record_failure(0.0, overload=True)
    assert breaker.state == CircuitBreaker.CLOSED
    breaker.record_failure(0.0, overload=True)
    assert breaker.state == CircuitBreaker.OPEN


def test_failed_probe_reopens_with_a_longer_window():
    policy = CircuitBreakerPolicy(
        failure_trip=1, open_base_ms=100.0, open_factor=2.0, jitter=0.0
    )
    breaker = CircuitBreaker(policy, seed="sp1")
    breaker.record_failure(0.0)
    first_reopen = breaker.reopen_at_ms
    assert first_reopen == 100.0
    breaker.on_dispatch(first_reopen)
    assert breaker.state == CircuitBreaker.HALF_OPEN
    breaker.record_failure(first_reopen)
    assert breaker.state == CircuitBreaker.OPEN
    # The second open interval doubled.
    assert breaker.reopen_at_ms == first_reopen + 200.0


def test_success_resets_the_failure_streak():
    policy = CircuitBreakerPolicy(failure_trip=2, jitter=0.0)
    breaker = CircuitBreaker(policy, seed="sp1")
    breaker.record_failure(0.0)
    breaker.record_success()
    breaker.record_failure(0.0)
    assert breaker.state == CircuitBreaker.CLOSED


def test_retry_after_hint_extends_the_quiet_period_never_shortens():
    policy = CircuitBreakerPolicy(
        failure_trip=1, open_base_ms=100.0, jitter=0.0
    )
    long_hint = CircuitBreaker(policy, seed="sp1")
    long_hint.record_failure(0.0, retry_after_ms=500.0)
    assert long_hint.reopen_at_ms == 500.0
    short_hint = CircuitBreaker(policy, seed="sp1")
    short_hint.record_failure(0.0, retry_after_ms=10.0)
    assert short_hint.reopen_at_ms == 100.0
    # A forged astronomic hint is clamped before it can park the
    # breaker forever.
    forged = CircuitBreaker(policy, seed="sp1")
    forged.record_failure(0.0, retry_after_ms=10**12)
    assert forged.reopen_at_ms == RETRY_AFTER_CAP_MS


def test_breaker_reopen_jitter_is_seeded_and_desynchronized():
    policy = CircuitBreakerPolicy(failure_trip=1, jitter=0.5)
    first = CircuitBreaker(policy, seed="sp1")
    replay = CircuitBreaker(policy, seed="sp1")
    other = CircuitBreaker(policy, seed="sp2")
    for breaker in (first, replay, other):
        breaker.record_failure(0.0)
    # Same seed replays bit-identically; different endpoints land on
    # different reopen instants (no lockstep re-probe stampede).
    assert first.reopen_at_ms == replay.reopen_at_ms
    assert first.reopen_at_ms != other.reopen_at_ms


# -- latency tracking and adaptive timeouts -----------------------------------


def test_latency_tracker_ewma_and_quantiles():
    tracker = LatencyTracker(alpha=0.5, window=8)
    for sample in [10.0, 20.0, 30.0, 40.0]:
        tracker.observe(sample)
    assert tracker.count == 4
    assert tracker.ewma_ms == pytest.approx(31.25)
    assert tracker.quantile(0.0) == 10.0
    assert tracker.p90() == 40.0
    assert LatencyTracker().quantile(0.5) is None


def test_adaptive_timeout_tightens_only_after_enough_samples():
    tracker = LatencyTracker()
    for _ in range(7):
        tracker.observe(10.0)
    assert tracker.timeout_ms(500.0, min_samples=8) == 500.0
    tracker.observe(10.0)
    # p90 (10 ms) x 3 = 30 ms, floored at 10, under the 500 ms ceiling.
    assert tracker.timeout_ms(500.0, min_samples=8) == 30.0
    # The static ceiling is a correctness bound: adaptation never
    # raises it.
    tracker.observe(10_000.0)
    assert tracker.timeout_ms(500.0, min_samples=8) == 500.0


def test_hedge_policy_delay_is_gated_and_clamped():
    policy = HedgePolicy(min_samples=4, delay_floor_ms=5.0, delay_cap_ms=50.0)
    assert policy.delay_ms(None) is None
    assert HedgePolicy(enabled=False).delay_ms(LatencyTracker()) is None
    tracker = LatencyTracker()
    for _ in range(3):
        tracker.observe(20.0)
    assert policy.delay_ms(tracker) is None  # too few samples
    tracker.observe(20.0)
    assert policy.delay_ms(tracker) == 20.0
    fast = LatencyTracker()
    for _ in range(4):
        fast.observe(1.0)
    assert policy.delay_ms(fast) == 5.0  # floored
    slow = LatencyTracker()
    for _ in range(4):
        slow.observe(500.0)
    assert policy.delay_ms(slow) == 50.0  # capped


# -- jittered backoff (retry-storm desync regression) -------------------------


def test_jittered_backoff_desynchronizes_a_fleet():
    """Two clients sharing one jittered policy must walk *different*
    backoff schedules (per-name seeded streams), while the same client
    name replays the identical schedule run over run — the regression
    guard against synchronized retry waves."""
    policy = RetryPolicy(backoff_base_ms=100.0, jitter=0.2)

    def schedule(name: str) -> list[float]:
        client = RpcClient(MessageBus(), name)
        return [policy.backoff_ms(a, client._rng) for a in range(4)]

    first, second = schedule("c1"), schedule("c2")
    assert first != second
    assert schedule("c1") == first  # deterministic replay
    for waves in (first, second):
        for attempt, wave in enumerate(waves):
            nominal = min(100.0 * 2.0**attempt, policy.backoff_max_ms)
            assert 0.8 * nominal <= wave <= 1.2 * nominal


def test_unjittered_backoff_stays_bit_compatible():
    policy = RetryPolicy(backoff_base_ms=50.0)
    client = RpcClient(MessageBus(), "c1")
    assert policy.backoff_ms(0, client._rng) == 50.0
    assert policy.backoff_ms(1, client._rng) == 100.0


# -- server-side deadline refusal and admission shedding ----------------------


def _busy_server(bus, *, service_ms=50.0, admission=None):
    served = []
    server = RpcServer(
        bus, "server", service_time_ms=service_ms, admission=admission
    )
    server.register("work", lambda argument: served.append(argument) or "done")
    return server, served


def test_server_refuses_doomed_work_at_admission(bus):
    server, served = _busy_server(bus, service_ms=50.0)
    client = RpcClient(bus, "client", RetryPolicy(max_attempts=1))
    # 30 ms of budget cannot cover a 50 ms service time.
    with pytest.raises(DeadlineExceededError, match="would complete"):
        client.call("server", "work", deadline_ms=bus.clock_ms + 30.0)
    assert server.deadline_refused == 1
    assert served == []  # the handler never ran: zero provider work


def test_expired_deadline_never_even_dispatches(bus):
    server, served = _busy_server(bus)
    client = RpcClient(bus, "client")
    bus.run_for(100.0)
    with pytest.raises(DeadlineExceededError, match="expired"):
        client.call("server", "work", deadline_ms=50.0)
    assert client.deadline_gaveups == 1
    assert server.invocations == {} and served == []


def test_admission_sheds_on_standing_queue_delay(bus):
    admission = AdmissionPolicy(shed_delay_ms=60.0, queue_limit=100)
    server, served = _busy_server(bus, service_ms=50.0, admission=admission)
    flood = RpcClient(bus, "flood", RetryPolicy(max_attempts=1))
    ids = [flood.begin("server", "work", i) for i in range(5)]
    bus.run_until_idle()
    # Arrivals at one instant: #1 starts now, #2 waits 50 ms (admitted,
    # under the 60 ms target), #3+ would wait >= 100 ms (shed).
    assert server.requests_shed == 3
    assert len(served) == 2
    shed = [r for i in ids if (r := flood.take(i)) and not r.ok]
    assert len(shed) == 3
    for response in shed:
        assert response.code == "net.overloaded"
        assert response.retry_after_ms >= admission.retry_after_min_ms


def test_admission_queue_limit_is_a_hard_cap(bus):
    admission = AdmissionPolicy(shed_delay_ms=10_000.0, queue_limit=2)
    server, _ = _busy_server(bus, service_ms=10.0, admission=admission)
    flood = RpcClient(bus, "flood", RetryPolicy(max_attempts=1))
    for i in range(6):
        flood.begin("server", "work", i)
    bus.run_until_idle()
    assert server.requests_shed > 0
    assert server.max_queue_delay_ms <= 2 * 10.0


def test_client_honors_clamped_retry_after_hint(bus):
    """An OVERLOADED refusal's hint stretches the backoff: the retry
    waits at least the server's drain estimate, and the wait is counted
    for observability."""
    admission = AdmissionPolicy(
        shed_delay_ms=5.0, retry_after_min_ms=200.0, retry_after_cap_ms=200.0
    )
    server, served = _busy_server(bus, service_ms=50.0, admission=admission)
    flood = RpcClient(bus, "flood", RetryPolicy(max_attempts=1))
    for i in range(3):
        flood.begin("server", "work", i)
    client = RpcClient(
        bus, "client",
        RetryPolicy(timeout_ms=500.0, max_attempts=2, backoff_base_ms=1.0),
    )
    started = bus.clock_ms
    assert client.call("server", "work") == "done"
    assert client.retry_after_waits == 1
    # First attempt shed instantly; the retry waited out the 200 ms
    # hint (not the 1 ms nominal backoff) before succeeding.
    assert bus.clock_ms - started >= 200.0


def test_forged_retry_after_cannot_stall_the_client(bus):
    """The hint crosses the wire from an untrusted endpoint: an
    astronomically large value delays one retry by the clamp cap, not
    forever."""
    node = bus.join(NetworkNode("evil", record_limit=0))

    def shed_with_forged_hint(message):
        bus.send(
            "evil", message.sender, rpc_topic(message.sender),
            RpcResponse(
                request_id=message.request_id, sender="evil", ok=False,
                payload=wire.encode("go away"), code="net.overloaded",
                retry_after_ms=10.0**15,
            ),
        )

    node.on(rpc_topic("evil"), shed_with_forged_hint)
    client = RpcClient(
        bus, "client",
        RetryPolicy(timeout_ms=100.0, max_attempts=2, backoff_base_ms=1.0),
    )
    started = bus.clock_ms
    with pytest.raises(OverloadedError):
        client.call("evil", "work")
    waited = bus.clock_ms - started
    assert waited <= RETRY_AFTER_CAP_MS + 2 * 100.0


# -- bounded response bookkeeping ---------------------------------------------


def test_response_book_is_bounded_under_an_untaken_flood(bus):
    server, _ = _busy_server(bus, service_ms=0.0)
    client = RpcClient(bus, "client")
    ids = [
        client.begin("server", "work", i)
        for i in range(client.RESPONSES_LIMIT + 40)
    ]
    bus.run_until_idle()
    assert len(client._responses) == client.RESPONSES_LIMIT
    # The oldest replies were swept; the newest are still takeable.
    assert client.take(ids[0]) is None
    assert client.take(ids[-1]) is not None


def test_abandon_sweeps_pending_and_drops_the_late_reply(bus):
    server, _ = _busy_server(bus, service_ms=50.0)
    client = RpcClient(bus, "client")
    request_id = client.begin("server", "work")
    client.abandon(request_id)
    assert request_id in client._abandoned
    bus.run_until_idle()
    # The late reply was counted and dropped, never retained.
    assert client.late_after_abandon == 1
    assert request_id not in client._abandoned
    assert client._responses == {}


def test_abandoned_book_is_bounded(bus):
    bus.join(NetworkNode("void", record_limit=0))  # sinks every request
    client = RpcClient(bus, "client")
    for i in range(client.ABANDONED_LIMIT + 64):
        request_id = client.begin("void", "work", i)
        client.abandon(request_id)
    assert len(client._abandoned) == client.ABANDONED_LIMIT


# -- taxonomy round trips -----------------------------------------------------


def test_overloaded_round_trips_through_the_code_registry():
    assert code_for(OverloadedError) == "net.overloaded"
    assert code_for(OverloadedError("shed", retry_after_ms=5.0)) == "net.overloaded"
    assert error_for_code("net.overloaded") is OverloadedError
    assert is_retryable_code("net.overloaded") is True


def test_deadline_exceeded_round_trips_and_is_terminal():
    assert code_for(DeadlineExceededError) == "net.deadline"
    assert error_for_code("net.deadline") is DeadlineExceededError
    # Re-sending an expired budget deterministically fails again: the
    # retry loop must not spin on it.
    assert is_retryable_code("net.deadline") is False


def test_unregistered_resilience_subclasses_degrade_to_ancestors():
    class FutureOverload(OverloadedError):
        pass

    class FutureDeadline(DeadlineExceededError):
        pass

    # Subclasses minted after this build inherit the parent's code, so
    # a decoding peer lands on the nearest known ancestor.
    assert code_for(FutureOverload) == "net.overloaded"
    assert error_for_code(code_for(FutureOverload)) is OverloadedError
    assert code_for(FutureDeadline) == "net.deadline"
    assert error_for_code(code_for(FutureDeadline)) is DeadlineExceededError
    assert error_for_code("net.made-up-later") is RemoteCallError
    assert is_retryable_code("net.made-up-later") is False
    assert error_for_code(None) is RemoteCallError


def test_overloaded_is_a_network_error_with_a_hint():
    error = OverloadedError("busy", retry_after_ms=35.0)
    assert isinstance(error, NetworkError)
    assert error.retry_after_ms == 35.0
    assert OverloadedError("busy").retry_after_ms == 0.0


# -- gateway integration: breakers and hedging --------------------------------


def _gateway_fleet(bus, *, service_ms=10.0, admission=None, hedge=None,
                   breaker=None):
    providers = {}
    for name in ("sp1", "sp2"):
        server = RpcServer(
            bus, name, service_time_ms=service_ms, admission=admission
        )
        server.register("work", lambda argument, name=name: f"{name}:done")
        providers[name] = server
    gateway = QueryGateway(
        bus, "gw", list(providers),
        balancer="round-robin", seed=3,
        policy=RetryPolicy(timeout_ms=1_000.0, max_attempts=1),
        health=HealthPolicy(failure_threshold=100),
        breaker=breaker, hedge=hedge,
    )
    return gateway, providers


def test_breaker_steers_traffic_off_a_saturated_replica(bus):
    admission = AdmissionPolicy(shed_delay_ms=5.0, queue_limit=1)
    gateway, providers = _gateway_fleet(
        bus, service_ms=50.0, admission=admission,
        breaker=CircuitBreakerPolicy(overload_trip=1, jitter=0.0),
    )
    flood = RpcClient(bus, "flood", RetryPolicy(max_attempts=1))
    for i in range(8):
        flood.begin("sp1", "work", i)
    # Round-robin would alternate sp1/sp2; the first shed from sp1
    # trips its breaker (overload_trip=1) and everything after lands
    # on sp2 without waiting out the saturation.
    results = [gateway.call("work", i) for i in range(4)]
    assert all(result == "sp2:done" for result in results)
    assert gateway.breaker_trips() == 1
    state = gateway.replicas["sp1"]
    assert state.breaker.state == CircuitBreaker.OPEN
    assert state.healthy  # backpressure, not a liveness strike


def test_hedged_dispatch_races_a_slow_primary(bus):
    gateway, providers = _gateway_fleet(
        bus, service_ms=10.0,
        hedge=HedgePolicy(min_samples=4, delay_floor_ms=5.0),
    )
    for i in range(8):  # warm both trackers (round-robin: 4 each)
        gateway.call("work", i)
    providers["sp1"].server_time = None  # keep linters quiet
    providers["sp1"]._service_times["work"] = 500.0
    started = bus.clock_ms
    result = gateway.call("work", "tail")
    elapsed = bus.clock_ms - started
    assert result == "sp2:done"  # the fast hedge won
    assert gateway.hedges == 1 and gateway.hedge_wins == 1
    assert elapsed < 100.0  # nowhere near the 500 ms primary
