"""The wire codec: library dataclasses ⇄ canonical JSON bytes."""

import dataclasses

import pytest

from repro.crypto import generate_keypair
from repro.errors import WireError
from repro.net import wire
from repro.net.messages import LagNotice, StreamAck
from repro.net.pubsub import (
    HeartbeatReply,
    SubscribeReply,
    SyncReply,
    TipAnnouncement,
)
from repro.query.api import (
    AggregateQuery,
    HistoryQuery,
    KeywordQuery,
    ValueRangeQuery,
)


@pytest.mark.parametrize(
    "value",
    [
        None,
        True,
        False,
        0,
        -17,
        3.5,
        "hello",
        b"",
        b"\x00\xffraw",
        (1, "two", b"\x03"),
        [1, [2, [3]]],
        {"a": 1, "b": (2, 3)},
        {1: "int keys", (2, 3): "tuple keys"},
    ],
)
def test_scalar_and_container_round_trip(value):
    decoded = wire.decode(wire.encode(value))
    assert decoded == value
    assert type(decoded) is type(value)


def test_tuple_list_distinction_survives():
    decoded = wire.decode(wire.encode(((1, 2), [3, 4])))
    assert decoded == ((1, 2), [3, 4])
    assert isinstance(decoded[0], tuple)
    assert isinstance(decoded[1], list)


@pytest.mark.parametrize(
    "request_",
    [
        HistoryQuery(index="history", account="acct1", t_from=1, t_to=9),
        AggregateQuery(index="balances", account="alice", t_from=2, t_to=5),
        ValueRangeQuery(index="range", lo=900, hi=1100),
        KeywordQuery(index="keyword", keywords=("a", "b")),
    ],
)
def test_query_requests_round_trip(request_):
    assert wire.decode(wire.encode(request_)) == request_


def test_nested_library_dataclass_round_trips():
    keypair = generate_keypair(b"wire-test")
    decoded = wire.decode(wire.encode(keypair.public))
    assert decoded == keypair.public


def test_encoding_is_canonical():
    request = HistoryQuery(index="i", account="a", t_from=1, t_to=2)
    assert wire.encode(request) == wire.encode(request)


def test_non_library_dataclass_refused():
    @dataclasses.dataclass
    class Foreign:
        x: int

    with pytest.raises(WireError):
        wire.encode(Foreign(1))


def test_unserializable_value_refused():
    with pytest.raises(WireError):
        wire.encode(object())


@pytest.mark.parametrize(
    "data",
    [
        b"",
        b"\xff\xfe not json",
        b"[1,2,3]",  # bare arrays are never produced by the codec
        b'{"!b":"xyz"}',  # not hex
        b'{"!b":"00","!t":[]}',  # ambiguous tags
        b'{"no":"tag"}',
        b'{"!dc":"os:path","!f":{}}',  # refuses non-repro modules
        b'{"!dc":"repro.query.api:Nope","!f":{}}',
        b'{"!dc":"repro.query.api:HistoryQuery"}',  # missing field map
    ],
)
def test_undecodable_bytes_raise_wire_error(data):
    with pytest.raises(WireError):
        wire.decode(data)


def test_tampered_field_values_fail_validation_on_decode():
    """An off-curve public key is rejected by its own __post_init__."""
    keypair = generate_keypair(b"wire-tamper")
    encoded = wire.encode(keypair.public)
    x = keypair.public.x
    tampered = encoded.replace(str(x).encode(), str(x + 1).encode(), 1)
    assert tampered != encoded
    with pytest.raises(WireError):
        wire.decode(tampered)


def test_unknown_structural_field_rejected():
    request = HistoryQuery(index="i", account="a", t_from=1, t_to=2)
    encoded = wire.encode(request)
    tampered = encoded.replace(b'"account"', b'"acct_no"')
    with pytest.raises(WireError):
        wire.decode(tampered)


# -- push-stream wire messages ------------------------------------------------


@pytest.mark.parametrize(
    "message",
    [
        StreamAck(subscriber="client-3", seq=41),
        SubscribeReply(latest_seq=7, lease_ms=30_000.0),
        HeartbeatReply(latest_seq=9, subscribed=True, lagged=False),
        HeartbeatReply(latest_seq=0, subscribed=False, lagged=True),
        LagNotice(latest_seq=12, dropped=4),
        SyncReply(announcements=(), latest_seq=3, oldest_retained=1),
    ],
)
def test_push_stream_messages_round_trip(message):
    decoded = wire.decode(wire.encode(message))
    assert decoded == message
    assert type(decoded) is type(message)


def test_sync_reply_with_announcement_round_trips(certified_setup):
    certified = certified_setup["issuer"].certified[-1]
    announcement = TipAnnouncement(
        seq=5,
        published_at_ms=125.0,
        header=certified.block.header,
        certificate=certified.certificate,
        index_certificates=certified.index_certificates,
        index_roots=certified.index_roots,
    )
    reply = SyncReply(
        announcements=(announcement,), latest_seq=5, oldest_retained=2
    )
    decoded = wire.decode(wire.encode(reply))
    assert decoded == reply
    assert decoded.announcements[0].certificate == certified.certificate
