"""The subscription hub: windowed delivery, backpressure, catch-up.

Unit tests for :mod:`repro.net.pubsub` mechanics — the ack window,
drop-oldest overflow with LagNotice, heartbeat retransmission, lease
reaping, sequence continuity across a hub restart — plus the client
side of each flow (gap detection, deferred resync, re-subscribe).
"""

import pytest

from repro.chain import ChainBuilder
from repro.chain.genesis import make_genesis
from repro.core import (
    CertificateIssuer,
    ClientConfig,
    IssuerService,
    compute_expected_measurement,
    connect,
)
from repro.crypto import generate_keypair
from repro.errors import ReproError
from repro.net import FaultInjector, LinkFaults, MessageBus
from repro.net.gateway import QueryGateway
from repro.net.pubsub import SubscriptionHub
from repro.query.indexes import AccountHistoryIndexSpec
from repro.sgx.attestation import AttestationService
from tests.conftest import fresh_vm, make_kv_tx


@pytest.fixture(scope="module")
def chain(user_keypair):
    """An 8-block KVStore chain the per-test issuers re-certify."""
    builder = ChainBuilder(difficulty_bits=4, network="pubsub")
    nonce = 0
    for _ in range(8):
        builder.add_block([
            make_kv_tx(user_keypair, nonce, f"k{nonce % 3}", f"v{nonce}")
        ])
        nonce += 1
    return builder


class World:
    """A fresh issuer + hub + N subscribed clients over one bus."""

    def __init__(self, chain, *, clients=("c1",), subscribe=True, **hub_kwargs):
        self.chain = chain
        self.bus = MessageBus(default_latency_ms=5.0)
        self.injector = FaultInjector(seed=77)
        self.bus.install_faults(self.injector)
        spec = AccountHistoryIndexSpec(name="history")
        genesis, state = make_genesis(network="pubsub")
        self.ias = AttestationService(seed=b"pubsub-ias")
        self.issuer = CertificateIssuer(
            genesis, state, fresh_vm(), chain.pow,
            index_specs=[spec], ias=self.ias, key_seed=b"pubsub-enclave",
        )
        self.service = IssuerService(self.bus, "ci", self.issuer)
        self.hub = SubscriptionHub.embedded(self.service, **hub_kwargs)
        self.hub.attach(self.issuer)
        self.measurement = compute_expected_measurement(
            genesis.header.header_hash(), self.ias.public_key, fresh_vm(),
            chain.pow.difficulty_bits, {spec.name: spec},
        )
        self.clients = {
            name: connect(ClientConfig(
                measurement=self.measurement,
                ias_public_key=self.ias.public_key,
                bus=self.bus, name=name, issuers=("ci",), hub="ci",
                subscribe=subscribe,
            ))
            for name in clients
        }

    def certify(self, count, *, start=None):
        """Feed the next ``count`` chain blocks through the issuer."""
        start = self.issuer.certified[-1].block.header.height + 1 if start is None else start
        for block in self.chain.blocks[start:start + count]:
            self.issuer.process_block(block)


def world(chain, **kwargs):
    return World(chain, **kwargs)


# -- the happy path ----------------------------------------------------------


def test_push_delivers_and_client_adopts(chain):
    w = world(chain)
    client = w.clients["c1"]
    w.certify(3, start=1)
    w.bus.run_until_idle()
    assert client.latest_header is not None
    assert client.latest_header.height == 3
    assert client.push_adopted == 3
    assert client.client.certified_index_root("history") is not None
    state = w.hub.subscribers["c1"]
    assert state.acked_seq == 3 and not state.inflight and not state.outbox


def test_subscribe_positions_a_new_subscriber_at_the_tip(chain):
    w = world(chain, clients=(), subscribe=False)
    w.certify(4, start=1)
    late = connect(ClientConfig(
        measurement=w.measurement, ias_public_key=w.ias.public_key,
        bus=w.bus, name="late", issuers=("ci",), hub="ci", subscribe=True,
    ))
    # Subscribing does not replay the past: the stream starts at seq 4.
    assert late._sub_seq == 4
    w.bus.run_until_idle()
    assert late.push_adopted == 0 and late.latest_header is None
    # ...but the next certified block is pushed.
    w.certify(1)
    w.bus.run_until_idle()
    assert late.push_adopted == 1 and late.latest_header.height == 5


def test_every_subscriber_of_a_fanout_converges(chain):
    w = world(chain, clients=("a", "b", "c"))
    w.certify(5, start=1)
    w.bus.run_until_idle()
    for client in w.clients.values():
        assert client.latest_header.height == 5
        assert client.push_adopted == 5
    assert w.hub.published == 5


# -- windowing and backpressure ----------------------------------------------


def test_ack_window_bounds_inflight_pushes(chain):
    w = world(chain, window=2, outbox_limit=8)
    # Publish 5 announcements before the bus delivers anything: only
    # the window may be in flight, the rest queue in the outbox.
    w.certify(5, start=1)
    state = w.hub.subscribers["c1"]
    assert len(state.inflight) == 2
    assert list(state.outbox) == [3, 4, 5]
    # Acks drain the queue window-by-window to full delivery.
    w.bus.run_until_idle()
    assert not state.inflight and not state.outbox
    assert w.clients["c1"].latest_header.height == 5
    assert state.delivered == 5


def test_outbox_overflow_drops_oldest_and_marks_lagged(chain):
    w = world(chain, window=1, outbox_limit=2)
    client = w.clients["c1"]
    w.certify(5, start=1)  # 1 in flight, 2 queued, then overflow
    state = w.hub.subscribers["c1"]
    assert state.lagged
    assert state.dropped_oldest >= 1
    w.certify(1)  # published while lagged: skipped, not queued
    assert state.skipped_while_lagged >= 1
    w.bus.run_until_idle()
    # The client saw the LagNotice (or the seq gap) and deferred the
    # pull — push handlers never issue blocking RPC.
    assert client._needs_resync
    assert client.latest_header.height < 6
    client.heartbeat()
    w.bus.run_until_idle()
    assert client.latest_header.height == 6
    assert client.push_resyncs >= 1
    assert w.hub.resyncs >= 1
    assert not w.hub.subscribers["c1"].lagged


def test_sync_range_serves_bounded_history(chain):
    w = world(chain, clients=(), history_limit=3)
    w.certify(7, start=1)
    reply = w.hub._sync_range(1)
    assert reply.latest_seq == 7
    assert reply.oldest_retained == 5  # 7 - history_limit + 1
    assert [a.seq for a in reply.announcements] == [5, 6, 7]
    # A truncated range still fully syncs a superlight client: the
    # newest announcement is self-sufficient.
    assert reply.announcements[-1].header.height == 7


# -- loss recovery -----------------------------------------------------------


def test_heartbeat_retransmits_lost_inflight_pushes(chain):
    w = world(chain, window=4)
    client = w.clients["c1"]
    # Every push to the client vanishes in flight.
    w.injector.set_link("ci", "c1", LinkFaults(drop_rate=1.0))
    w.certify(2, start=1)
    w.bus.run_until_idle()
    assert client.latest_header is None
    state = w.hub.subscribers["c1"]
    assert state.inflight == {1, 2}
    # The link heals; the heartbeat reports acked_seq=0, the hub
    # requeues the lost window and the stream catches the client up.
    w.injector.set_link("ci", "c1", LinkFaults())
    client.heartbeat()
    w.bus.run_until_idle()
    assert state.retransmits == 2
    assert client.latest_header.height == 2
    assert w.hub.subscribers["c1"].acked_seq == 2


def test_lease_expiry_reaps_silent_subscribers(chain):
    w = world(chain, lease_ms=500.0)
    client = w.clients["c1"]
    w.certify(1, start=1)
    w.bus.run_until_idle()
    assert client.latest_header.height == 1
    # The client goes silent past its lease; the next publish reaps it.
    w.bus.run_for(2_000.0)
    w.certify(1)
    assert "c1" not in w.hub.subscribers
    assert w.hub.reaped == 1
    w.bus.run_until_idle()
    assert client.latest_header.height == 1  # nothing was pushed
    # Its next heartbeat discovers the eviction and recovers fully.
    reply = client.heartbeat()
    w.bus.run_until_idle()
    assert reply.subscribed is False
    assert "c1" in w.hub.subscribers
    assert client.latest_header.height == 2


def test_departed_subscriber_is_reaped_on_send_failure(chain):
    w = world(chain, clients=())
    w.hub._subscribe("ghost")  # never joined the bus
    assert "ghost" in w.hub.subscribers
    w.certify(1, start=1)
    assert "ghost" not in w.hub.subscribers
    assert w.hub.reaped == 1


# -- stream semantics --------------------------------------------------------


def test_augmented_only_blocks_consume_a_seq_without_a_push(chain):
    w = world(chain, clients=())

    class AugmentedOnly:
        certificate = None

    before = w.hub.seq
    assert w.hub.publish(AugmentedOnly()) is None
    assert w.hub.seq == before + 1
    assert w.hub.published == 0


def test_gap_defers_resync_to_the_next_heartbeat(chain):
    w = world(chain)
    client = w.clients["c1"]
    w.certify(1, start=1)
    w.bus.run_until_idle()
    # The push for seq 2 is lost in flight; seq 3 then arrives as a
    # gap from the client's view.
    w.injector.set_link("ci", "c1", LinkFaults(drop_rate=1.0))
    w.certify(1)
    w.bus.run_until_idle()
    w.injector.set_link("ci", "c1", LinkFaults())
    w.certify(1)
    w.bus.run_until_idle()
    assert client.push_gaps >= 1
    assert client._needs_resync
    assert client.latest_header.height == 1
    client.heartbeat()
    w.bus.run_until_idle()
    assert client.latest_header.height == 3
    assert client._sub_seq == w.hub.seq == 3


def test_hub_restart_resumes_the_sequence(chain):
    w = world(chain)
    client = w.clients["c1"]
    w.certify(2, start=1)
    w.bus.run_until_idle()
    w.hub.detach()
    # A replacement hub on a fresh endpoint resumes where the issuer
    # is, instead of rewinding the stream to seq 0.
    hub2 = SubscriptionHub(w.bus, "hub2")
    hub2.attach(w.issuer, announce_existing=True)
    assert hub2.seq == 2
    reply = hub2._sync_range(1)
    assert [a.seq for a in reply.announcements] == [1, 2]
    # The client re-subscribes to the new endpoint and the stream
    # continues seamlessly.
    client.subscribe(source="hub2")
    w.certify(1)
    w.bus.run_until_idle()
    assert client.latest_header.height == 3
    assert hub2.subscribers["c1"].acked_seq == 3


# -- construction ------------------------------------------------------------


def test_constructor_takes_exactly_one_transport(chain):
    bus = MessageBus()
    with pytest.raises(ValueError):
        SubscriptionHub()
    with pytest.raises(ValueError):
        SubscriptionHub(bus, server=IssuerService(bus, "x", object()).server)
    with pytest.raises(ValueError):
        SubscriptionHub(bus, outbox_limit=0)


def test_embedded_beside_a_gateway_gets_a_sibling_endpoint():
    bus = MessageBus()
    gateway = QueryGateway(bus, "gw", ["sp1"])
    hub = SubscriptionHub.embedded(gateway)
    assert hub.name == "gw.hub"
    assert hub.bus is bus
    with pytest.raises(ValueError):
        SubscriptionHub.embedded(object())


def test_attach_requires_an_on_certified_hook(chain):
    w = world(chain, clients=())
    with pytest.raises(ReproError):
        w.hub.attach(object())
