"""The query gateway: balancing, health, failover, pipelining.

These tests exercise the gateway against plain RpcServers (any method
registry works — the gateway is method-agnostic); the full
QueryService + supervisor composition lives in
tests/fault/test_fleet_chaos.py.
"""

import pytest

from repro.errors import (
    QueryError,
    ServiceUnavailableError,
)
from repro.net.bus import MessageBus
from repro.net.gateway import (
    HealthPolicy,
    LeastOutstanding,
    QueryGateway,
    ReplicaState,
    RoundRobin,
    SeededRandom,
    make_balancer,
)
from repro.net.rpc import RetryPolicy, RpcServer


@pytest.fixture()
def bus():
    return MessageBus(default_latency_ms=5.0)


def make_fleet(bus, count, *, service_time_ms=0.0):
    """Replicas whose echo answers carry the serving replica's name."""
    servers = {}
    for i in range(count):
        name = f"sp{i + 1}"
        server = RpcServer(bus, name, service_time_ms=service_time_ms)

        def echo(argument, name=name):
            return {"replica": name, "arg": argument}

        server.register("echo", echo)
        servers[name] = server
    return servers


def make_gateway(bus, replicas, **kwargs):
    kwargs.setdefault(
        "policy", RetryPolicy(timeout_ms=100.0, max_attempts=1)
    )
    kwargs.setdefault(
        "health", HealthPolicy(failure_threshold=2, probe_base_ms=100.0)
    )
    return QueryGateway(bus, "gw", replicas, **kwargs)


# -- balancing policies ------------------------------------------------------


def test_round_robin_distributes_evenly(bus):
    servers = make_fleet(bus, 3)
    gateway = make_gateway(bus, list(servers), balancer="round-robin")
    for _ in range(9):
        gateway.call("echo", "x")
    assert [s.requests_served for s in servers.values()] == [3, 3, 3]


def test_seeded_random_is_deterministic():
    first = MessageBus(default_latency_ms=5.0)
    second = MessageBus(default_latency_ms=5.0)
    sequences = []
    for bus in (first, second):
        make_fleet(bus, 3)
        gateway = make_gateway(
            bus, ["sp1", "sp2", "sp3"], balancer="seeded-random", seed=7
        )
        sequences.append(
            [gateway.call("echo", i)["replica"] for i in range(8)]
        )
    assert sequences[0] == sequences[1]
    assert len(set(sequences[0])) > 1  # actually spreads load


def test_least_outstanding_prefers_idle_replica():
    balancer = LeastOutstanding()
    idle = ReplicaState("idle")
    busy = ReplicaState("busy")
    busy.track(1, 0.0)
    busy.track(2, 0.0)
    assert balancer.pick([busy, idle]) is idle


def test_make_balancer_resolves_names():
    assert isinstance(make_balancer("round-robin"), RoundRobin)
    assert isinstance(make_balancer("least-outstanding"), LeastOutstanding)
    assert isinstance(make_balancer("seeded-random", seed=3), SeededRandom)
    with pytest.raises(ValueError, match="unknown balancing policy"):
        make_balancer("nope")


# -- health and failover -----------------------------------------------------


def test_failover_to_live_replica_when_one_is_dead(bus):
    servers = make_fleet(bus, 2)
    servers["sp1"].paused = True  # a dead host: requests vanish
    gateway = make_gateway(bus, ["sp1", "sp2"])
    results = [gateway.call("echo", i)["replica"] for i in range(4)]
    assert set(results) == {"sp2"}
    assert gateway.failovers >= 1


def test_dead_replica_leaves_rotation_after_threshold(bus):
    servers = make_fleet(bus, 2)
    servers["sp1"].paused = True
    gateway = make_gateway(bus, ["sp1", "sp2"])
    for i in range(4):
        gateway.call("echo", i)
    assert gateway.healthy_replicas() == ["sp2"]
    # Once ejected, sp1 stops eating a timeout on every call: the next
    # calls go straight to sp2 (no new timeouts until a probe is due).
    timeouts_before = gateway.rpc.timeouts
    gateway.call("echo", "again")
    assert gateway.rpc.timeouts == timeouts_before


def test_probe_restores_recovered_replica(bus):
    servers = make_fleet(bus, 2)
    servers["sp1"].paused = True
    gateway = make_gateway(
        bus,
        ["sp1", "sp2"],
        health=HealthPolicy(failure_threshold=1, probe_base_ms=50.0),
    )
    gateway.call("echo", 1)  # sp1 times out once -> ejected
    assert gateway.healthy_replicas() == ["sp2"]
    servers["sp1"].paused = False  # the replica comes back
    bus.run_for(60.0)  # the probe window opens
    for i in range(4):
        gateway.call("echo", i)
    assert sorted(gateway.healthy_replicas()) == ["sp1", "sp2"]
    assert servers["sp1"].requests_served >= 1


def test_probe_backoff_grows_while_replica_stays_dead(bus):
    servers = make_fleet(bus, 2)
    servers["sp1"].paused = True
    gateway = make_gateway(
        bus,
        ["sp1", "sp2"],
        health=HealthPolicy(
            failure_threshold=1, probe_base_ms=50.0, probe_factor=2.0
        ),
    )
    gateway.call("echo", 1)
    state = gateway.replicas["sp1"]
    assert not state.healthy
    first_probe = state.next_probe_ms
    bus.run_for(60.0)
    gateway.call("echo", 2)  # the due probe fails again
    assert state.next_probe_ms > first_probe
    assert state.probe_attempt >= 1


def test_terminal_error_is_not_failed_over(bus):
    servers = make_fleet(bus, 2)
    for server in servers.values():
        def bad_query(argument):
            raise QueryError("no such index")

        server.register("fail", bad_query)
    gateway = make_gateway(bus, ["sp1", "sp2"])
    with pytest.raises(QueryError, match="no such index"):
        gateway.call("fail", "x")
    # Exactly one replica saw the request: a terminal error must not
    # burn the fleet retrying a query that is wrong everywhere.
    assert gateway.rpc.calls == 1
    assert sorted(gateway.healthy_replicas()) == ["sp1", "sp2"]


def test_retryable_remote_error_fails_over(bus):
    from repro.errors import ServiceUnavailableError as Unavailable

    servers = make_fleet(bus, 2)

    def warming_up(argument):
        raise Unavailable("restarting")

    servers["sp1"].register("echo", warming_up)
    gateway = make_gateway(bus, ["sp1", "sp2"])
    results = {gateway.call("echo", i)["replica"] for i in range(4)}
    assert results == {"sp2"}


def test_all_replicas_dead_raises_bounded(bus):
    servers = make_fleet(bus, 2)
    for server in servers.values():
        server.paused = True
    gateway = make_gateway(bus, ["sp1", "sp2"])
    before = bus.clock_ms
    with pytest.raises(ServiceUnavailableError):
        gateway.call("echo", "x")
    assert bus.clock_ms - before < 3_000.0  # bounded, not forever


# -- switch verification -----------------------------------------------------


def test_verify_switch_runs_once_per_replica(bus):
    make_fleet(bus, 2)
    verified = []
    gateway = make_gateway(
        bus, ["sp1", "sp2"], verify_switch=verified.append
    )
    for i in range(6):
        gateway.call("echo", i)
    assert sorted(set(verified)) == ["sp1", "sp2"]
    assert len(verified) == 2  # cached until reset_verified()
    gateway.reset_verified()
    gateway.call("echo", "again")
    assert len(verified) == 3


def test_unverifiable_replica_is_routed_around(bus):
    from repro.errors import ResponseIntegrityError

    make_fleet(bus, 2)

    def reject_sp1(replica):
        if replica == "sp1":
            raise ResponseIntegrityError("stale roots")

    gateway = make_gateway(bus, ["sp1", "sp2"], verify_switch=reject_sp1)
    results = {gateway.call("echo", i)["replica"] for i in range(4)}
    assert results == {"sp2"}
    assert not gateway.replicas["sp1"].healthy


# -- bounded bookkeeping -----------------------------------------------------


def test_inflight_bookkeeping_is_bounded():
    state = ReplicaState("sp", outstanding_limit=16)
    for request_id in range(1000):
        state.track(request_id, float(request_id))
    assert state.outstanding == 16
    # Oldest entries were evicted; newest retained.
    assert 999 in state.inflight and 0 not in state.inflight
    assert state.dispatched == 1000


# -- the pipelined path ------------------------------------------------------


def test_call_many_keeps_the_fleet_busy(bus):
    servers = make_fleet(bus, 2, service_time_ms=40.0)
    gateway = make_gateway(
        bus, ["sp1", "sp2"],
        policy=RetryPolicy(timeout_ms=500.0, max_attempts=1),
    )
    results = gateway.call_many("echo", list(range(8)))
    assert [r["arg"] for r in results] == list(range(8))
    # 8 x 40ms of service over 2 replicas ≈ 160ms + latency — far less
    # than the 320ms+ a single worker would need.
    assert bus.clock_ms < 300.0
    assert all(s.requests_served >= 2 for s in servers.values())


def test_call_many_fails_over_mid_batch(bus):
    servers = make_fleet(bus, 2)
    servers["sp1"].paused = True
    gateway = make_gateway(bus, ["sp1", "sp2"])
    results = gateway.call_many("echo", list(range(6)))
    assert [r["arg"] for r in results] == list(range(6))
    assert {r["replica"] for r in results} == {"sp2"}


def test_call_many_raises_terminal_error(bus):
    servers = make_fleet(bus, 2)
    for server in servers.values():
        def bad_query(argument):
            raise QueryError("bad request")

        server.register("fail", bad_query)
    gateway = make_gateway(bus, ["sp1", "sp2"])
    with pytest.raises(QueryError, match="bad request"):
        gateway.call_many("fail", [1, 2, 3])
