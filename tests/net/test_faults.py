"""Deterministic per-link fault injection."""

import random

import pytest

from repro.net.bus import MessageBus, NetworkNode
from repro.net.faults import (
    FaultInjector,
    LinkFaults,
    default_corrupter,
    flip_hex_digit,
)
from repro.net.rpc import RpcResponse


@pytest.fixture()
def bus():
    return MessageBus(default_latency_ms=10.0)


def wired(bus, injector):
    bus.join(NetworkNode("a"))
    b = bus.join(NetworkNode("b"))
    bus.subscribe("b", "t")
    bus.install_faults(injector)
    return b


def test_clean_link_passes_everything_through():
    injector = FaultInjector(seed=1)
    assert injector.apply("a", "b", "msg") == [(0.0, "msg")]
    assert injector.summary() == {}


def test_drop_rate_one_drops_all(bus):
    injector = FaultInjector(seed=1)
    injector.set_link("a", "b", LinkFaults(drop_rate=1.0))
    b = wired(bus, injector)
    for index in range(5):
        bus.publish("a", "t", index)
    assert bus.run_until_idle() == 0
    assert b.received == []
    assert injector.summary()["a->b"]["dropped"] == 5


def test_partial_drop_is_deterministic_per_seed(bus):
    def delivered_with(seed):
        injector = FaultInjector(seed=seed)
        injector.set_link("a", "b", LinkFaults(drop_rate=0.5))
        deliveries = []
        for index in range(20):
            deliveries.extend(m for _, m in injector.apply("a", "b", index))
        return deliveries

    first = delivered_with(7)
    assert first == delivered_with(7)  # same seed -> same schedule
    assert 0 < len(first) < 20
    assert first != delivered_with(8)


def test_duplicate_rate_one_duplicates(bus):
    injector = FaultInjector(seed=2)
    injector.set_link("a", "b", LinkFaults(duplicate_rate=1.0))
    b = wired(bus, injector)
    bus.publish("a", "t", "once")
    assert bus.run_until_idle() == 2
    assert b.received == ["once", "once"]
    stats = injector.summary()["a->b"]
    assert stats["duplicated"] == 1
    assert stats["delivered"] == 2


def test_extra_delay_and_jitter_bound(bus):
    injector = FaultInjector(seed=3)
    injector.set_link(
        "a", "b", LinkFaults(extra_delay_ms=100.0, jitter_ms=20.0)
    )
    b = wired(bus, injector)
    bus.publish("a", "t", "late")
    bus.run_until_idle()
    assert b.received == ["late"]
    # base latency 10 + extra 100 + jitter in [0, 20]
    assert 110.0 <= bus.clock_ms <= 130.0


def test_default_profile_applies_to_unconfigured_links(bus):
    injector = FaultInjector(seed=4, default=LinkFaults(drop_rate=1.0))
    b = wired(bus, injector)
    bus.publish("a", "t", "x")
    assert bus.run_until_idle() == 0
    assert b.received == []


def test_clear_link_restores_clean_delivery(bus):
    injector = FaultInjector(seed=5)
    injector.set_link("a", "b", LinkFaults(drop_rate=1.0))
    b = wired(bus, injector)
    bus.publish("a", "t", "lost")
    injector.clear_link("a", "b")
    bus.publish("a", "t", "kept")
    bus.run_until_idle()
    assert b.received == ["kept"]


def test_corruption_uses_message_hook():
    injector = FaultInjector(seed=6)
    injector.set_link("a", "b", LinkFaults(corrupt_rate=1.0))
    response = RpcResponse(
        request_id=1, sender="b", ok=True, payload=b'{"!b":"00ff"}'
    )
    [(_, tampered)] = injector.apply("a", "b", response)
    assert isinstance(tampered, RpcResponse)
    assert tampered.payload != response.payload
    assert injector.summary()["a->b"]["corrupted"] == 1


def test_custom_corrupter_wins():
    injector = FaultInjector(seed=6)
    injector.set_link(
        "a", "b",
        LinkFaults(corrupt_rate=1.0, corrupter=lambda m, rng: "garbled"),
    )
    assert injector.apply("a", "b", "anything") == [(0.0, "garbled")]


def test_default_corrupter_leaves_hookless_messages_alone():
    rng = random.Random(0)
    assert default_corrupter("plain", rng) == "plain"


def test_flip_hex_digit_changes_exactly_one_hex_char():
    rng = random.Random(0)
    data = b'{"!b":"00ff"}'
    flipped = flip_hex_digit(data, rng)
    assert flipped != data
    assert len(flipped) == len(data)
    assert sum(x != y for x, y in zip(data, flipped)) == 1


def test_flip_hex_digit_falls_back_to_bit_flip():
    rng = random.Random(0)
    data = b"XYZ!"  # no hex digits
    flipped = flip_hex_digit(data, rng)
    assert flipped != data
    assert len(flipped) == len(data)
    assert flip_hex_digit(b"", rng) == b""
