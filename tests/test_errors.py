"""The error taxonomy's wire contract (what rule ERR01 enforces
statically, exercised dynamically): every class round-trips through
its stable code, codes are unique, and retryability survives the trip.
"""

import pytest

from repro import errors
from repro.errors import (
    BusError,
    ConfigError,
    ERROR_CODES,
    RemoteCallError,
    ReproError,
    code_for,
    error_for_code,
    is_retryable_code,
)


def taxonomy_classes():
    seen = []

    def walk(cls):
        seen.append(cls)
        for sub in cls.__subclasses__():
            if sub.__module__ == errors.__name__:
                walk(sub)

    walk(ReproError)
    return seen


@pytest.mark.parametrize(
    "cls", taxonomy_classes(), ids=lambda cls: cls.__name__
)
def test_every_class_round_trips_through_its_code(cls):
    assert "code" in cls.__dict__, f"{cls.__name__} has no code of its own"
    assert error_for_code(code_for(cls)) is cls
    assert is_retryable_code(cls.code) == cls.retryable


def test_codes_are_unique_across_the_taxonomy():
    codes = [cls.code for cls in taxonomy_classes()]
    assert len(codes) == len(set(codes))
    assert set(codes) == set(ERROR_CODES)


def test_unknown_codes_decode_to_remote_call_error():
    assert error_for_code("net.minted-later") is RemoteCallError
    assert error_for_code(None) is RemoteCallError


def test_config_and_bus_errors_are_terminal():
    assert ConfigError.code == "config"
    assert not ConfigError.retryable
    assert BusError.code == "net.bus"
    assert issubclass(BusError, errors.NetworkError)
    # Mis-wiring deterministically fails again: no retries.
    assert not BusError.retryable


def test_config_errors_raised_at_wiring_time():
    from repro.core.client_api import ClientConfig
    from repro.sim.schedule import ScenarioSchedule

    config = ClientConfig(
        measurement=b"m" * 32, ias_public_key=None, subscribe=True
    )
    with pytest.raises(ConfigError):
        config.validate()
    with pytest.raises(ConfigError):
        ScenarioSchedule.generate(1, 5, profile="no-such-profile")


def test_bus_errors_raised_on_topology_misuse():
    from repro.net.bus import MessageBus, NetworkNode

    bus = MessageBus()
    bus.join(NetworkNode("a"))
    with pytest.raises(BusError):
        bus.join(NetworkNode("a"))
    with pytest.raises(BusError):
        bus.send("a", "ghost", "topic", "payload")
