"""Cost-model accounting: ledger snapshots/deltas and the disable stack.

Regression focus: ``cost_model_disabled()`` used to save/restore a
boolean, which breaks when nested contexts exit out of LIFO order
(pytest fixture teardown and generator finalization interleave
freely).  The model would either re-enable while an inner context was
still active or stay disabled forever — after which every ecall
recorded *zeroed* charges into ledgers the caller believed were live,
silently diluting snapshot deltas.  The depth counter fixes both.
"""

from __future__ import annotations

import pytest

from repro.sgx.costs import (
    CostLedger,
    SGXCostModel,
    cost_model_disabled,
    model_enabled,
)
from repro.sgx.enclave import EnclaveHost, EnclaveProgram
from repro.sgx.platform import SGXPlatform


class _Echo(EnclaveProgram):
    ECALLS = ("echo",)

    def config_bytes(self) -> bytes:
        return b"cost-tests"

    def on_init(self) -> bytes:
        return b"report-data"

    def echo(self, value):
        return value


@pytest.fixture()
def host():
    return EnclaveHost(
        _Echo(),
        SGXPlatform(seed=b"cost-tests"),
        cost_model=SGXCostModel(spend_time=False),
    )


def test_non_lifo_nested_disable_contexts(_no_sgx_charges):
    # The autouse fixture holds one disable context open already; these
    # two exit in the opposite order from how they entered.
    outer = cost_model_disabled()
    inner = cost_model_disabled()
    outer.__enter__()
    inner.__enter__()
    outer.__exit__(None, None, None)
    # Inner context still active: the model must stay disabled.
    assert not model_enabled()
    inner.__exit__(None, None, None)
    # Back to just the fixture's context — still disabled, not "stuck".
    assert not model_enabled()


def test_non_lifo_exit_does_not_leak_zeroed_charges(host):
    """After a non-LIFO enter/exit dance, a live ledger must charge."""
    outer = cost_model_disabled()
    inner = cost_model_disabled()
    outer.__enter__()
    inner.__enter__()
    outer.__exit__(None, None, None)
    inner.__exit__(None, None, None)
    # All explicit contexts closed; only the suite fixture remains.
    # Charge with the model *enabled* and check it lands on the ledger.
    host.ledger.reset()
    before = host.ledger.snapshot()
    from repro.sgx import costs

    saved = costs._DISABLED_DEPTH
    costs._DISABLED_DEPTH = 0
    try:
        host.ecall("echo", b"x", payload_bytes=128)
    finally:
        costs._DISABLED_DEPTH = saved
    delta = host.ledger.delta(before)
    assert delta.ecalls == 1
    assert delta.transition_s > 0.0, "charges leaked away: model stuck off"


def test_snapshot_inside_disabled_context_stays_isolated(host):
    """A snapshot/delta taken inside a nested disabled context must not
    absorb zeroed charges into the outer ledger's accounting."""
    outer_before = host.ledger.snapshot()
    with cost_model_disabled():
        inner_before = host.ledger.snapshot()
        host.ecall("echo", b"x", payload_bytes=64)
        inner_delta = host.ledger.delta(inner_before)
        # Bookkeeping is always recorded; charges are not.
        assert inner_delta.ecalls == 1
        assert inner_delta.transition_s == 0.0
        assert inner_delta.paging_s == 0.0
    outer_delta = host.ledger.delta(outer_before)
    assert outer_delta.ecalls == 1
    assert outer_delta.transition_s == 0.0


def test_reset_inside_disabled_context(host):
    with cost_model_disabled():
        host.ecall("echo", b"x")
        host.ledger.reset()
        assert host.ledger.ecalls == 0
        host.ecall("echo", b"y")
    assert host.ledger.ecalls == 1
    assert host.ledger.transition_s == 0.0


def test_delta_subtracts_every_charge_field():
    before = CostLedger(
        ecalls=2, ocalls=1, transition_s=1.0, slowdown_s=2.0,
        paging_s=0.5, in_enclave_s=3.0, peak_epc_bytes=100,
    )
    after = CostLedger(
        ecalls=5, ocalls=4, transition_s=1.5, slowdown_s=2.25,
        paging_s=0.75, in_enclave_s=4.0, peak_epc_bytes=200,
    )
    delta = after.delta(before)
    assert delta.ecalls == 3
    assert delta.ocalls == 3
    assert delta.transition_s == pytest.approx(0.5)
    assert delta.slowdown_s == pytest.approx(0.25)
    assert delta.paging_s == pytest.approx(0.25)
    assert delta.in_enclave_s == pytest.approx(1.0)
    # Peak EPC is a high-water mark, not a sum: the delta carries it.
    assert delta.peak_epc_bytes == 200


def test_exception_inside_disabled_context_unwinds():
    with pytest.raises(RuntimeError):
        with cost_model_disabled():
            raise RuntimeError("boom")
    # The fixture's context is still active, so still disabled — but the
    # depth must have unwound by exactly one (no underflow/overflow).
    from repro.sgx import costs

    assert costs._DISABLED_DEPTH >= 1
    assert not model_enabled()
