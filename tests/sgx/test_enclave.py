"""Enclave runtime: measurement, ecall dispatch, cost accounting."""

import pytest

from repro.errors import EnclaveError
from repro.sgx.costs import SGXCostModel
from repro.sgx.enclave import EnclaveHost, EnclaveProgram, measure_program
from repro.sgx.platform import SGXPlatform


class EchoProgram(EnclaveProgram):
    ECALLS = ("echo", "fail")

    def __init__(self, tag: bytes = b"") -> None:
        self._tag = tag

    def config_bytes(self) -> bytes:
        return self._tag

    def on_init(self) -> bytes:
        self.initialized = True
        return b"report-data"

    def echo(self, value):
        return ("echo", value)

    def fail(self):
        raise ValueError("inside failure")

    def hidden(self):
        return "not an ecall"


class OtherProgram(EchoProgram):
    """Different source -> different measurement."""

    def extra(self):
        return 1


@pytest.fixture()
def host():
    return EnclaveHost(EchoProgram(), SGXPlatform(seed=b"enclave-tests"))


def test_measurement_is_deterministic():
    assert measure_program(EchoProgram) == measure_program(EchoProgram)


def test_measurement_changes_with_code():
    assert measure_program(EchoProgram) != measure_program(OtherProgram)


def test_measurement_changes_with_config():
    assert measure_program(EchoProgram, b"a") != measure_program(EchoProgram, b"b")


def test_host_folds_program_config(host):
    other = EnclaveHost(EchoProgram(tag=b"x"), SGXPlatform(seed=b"enclave-tests"))
    assert other.measurement != host.measurement


def test_on_init_runs_and_exports_report_data(host):
    assert host.program.initialized
    assert host.report_data == b"report-data"


def test_self_measurement_injected(host):
    assert host.program.self_measurement == host.measurement


def test_ecall_dispatch(host):
    assert host.ecall("echo", 42) == ("echo", 42)


def test_undeclared_ecall_rejected(host):
    with pytest.raises(EnclaveError):
        host.ecall("hidden")


def test_ecall_exceptions_propagate(host):
    with pytest.raises(ValueError):
        host.ecall("fail")


def test_no_charges_when_model_disabled(host):
    host.ecall("echo", 1)
    # Bookkeeping still happens; charges do not (autouse fixture).
    assert host.ledger.ecalls == 1
    assert host.ledger.in_enclave_s > 0
    assert host.ledger.transition_s == 0
    assert host.ledger.slowdown_s == 0
    assert host.ledger.paging_s == 0


def test_cost_ledger_accounting():
    model = SGXCostModel(spend_time=False)
    host = EnclaveHost(
        EchoProgram(), SGXPlatform(seed=b"ledger"), cost_model=model
    )
    # Escape the autouse disable for this one check.
    import repro.sgx.costs as costs

    previous = costs._DISABLED_DEPTH
    costs._DISABLED_DEPTH = 0
    try:
        host.ecall("echo", 1, payload_bytes=1000)
        host.ecall("echo", 2, payload_bytes=500)
    finally:
        costs._DISABLED_DEPTH = previous
    assert host.ledger.ecalls == 2
    assert host.ledger.transition_s == pytest.approx(2 * model.ecall_transition_s)
    assert host.ledger.peak_epc_bytes == 1000
    assert host.ledger.slowdown_s > 0
    assert host.ledger.paging_s == 0  # under the EPC limit


def test_paging_charge_beyond_epc():
    model = SGXCostModel(spend_time=False)
    assert model.paging_charge(model.epc_usable_bytes) == 0
    over = model.paging_charge(model.epc_usable_bytes + 10 * 1024 * 1024)
    assert over == pytest.approx(10 * model.paging_s_per_mb)


def test_ledger_snapshot_and_reset():
    from repro.sgx.costs import CostLedger

    ledger = CostLedger(ecalls=3, transition_s=1.0)
    snap = ledger.snapshot()
    ledger.reset()
    assert ledger.ecalls == 0 and snap.ecalls == 3
    assert snap.total_overhead_s() == 1.0


class OcallProgram(EnclaveProgram):
    ECALLS = ("fetch_twice",)

    def fetch_twice(self, key):
        first = self.ocall("lookup", key)
        second = self.ocall("lookup", key + 1)
        return (first, second)


def test_ocall_roundtrip():
    host = EnclaveHost(OcallProgram(), SGXPlatform(seed=b"ocall"))
    host.register_ocall("lookup", lambda key: key * 10)
    assert host.ecall("fetch_twice", 4) == (40, 50)


def test_ocall_unregistered_raises():
    host = EnclaveHost(OcallProgram(), SGXPlatform(seed=b"ocall2"))
    with pytest.raises(EnclaveError):
        host.ecall("fetch_twice", 1)


def test_unknown_ocall_name_raises():
    host = EnclaveHost(OcallProgram(), SGXPlatform(seed=b"ocall3"))
    host.register_ocall("other", lambda key: key)
    with pytest.raises(EnclaveError):
        host.ecall("fetch_twice", 1)


def test_ocall_costs_counted():
    import repro.sgx.costs as costs

    model = SGXCostModel(spend_time=False)
    host = EnclaveHost(OcallProgram(), SGXPlatform(seed=b"ocall4"), cost_model=model)
    host.register_ocall("lookup", lambda key: key)
    previous = costs._DISABLED_DEPTH
    costs._DISABLED_DEPTH = 0
    try:
        host.ecall("fetch_twice", 1)
    finally:
        costs._DISABLED_DEPTH = previous
    assert host.ledger.ocalls == 2
    assert host.ledger.transition_s == pytest.approx(
        model.ecall_transition_s + 2 * model.ocall_transition_s
    )
