"""Sealed storage: data bound to (platform, measurement)."""

import pytest

from repro.crypto.hashing import sha256
from repro.errors import EnclaveError
from repro.sgx.platform import SGXPlatform
from repro.sgx.sealing import seal, unseal


@pytest.fixture()
def platform():
    return SGXPlatform(seed=b"seal-tests")


MEASUREMENT = sha256(b"program-identity")


def test_seal_unseal_roundtrip(platform):
    sealed = seal(platform, MEASUREMENT, b"secret key material")
    assert unseal(platform, MEASUREMENT, sealed) == b"secret key material"


def test_ciphertext_hides_plaintext(platform):
    sealed = seal(platform, MEASUREMENT, b"secret key material")
    assert b"secret" not in sealed


def test_other_platform_cannot_unseal(platform):
    sealed = seal(platform, MEASUREMENT, b"data")
    other = SGXPlatform(seed=b"other-machine")
    with pytest.raises(EnclaveError):
        unseal(other, MEASUREMENT, sealed)


def test_other_program_cannot_unseal(platform):
    sealed = seal(platform, MEASUREMENT, b"data")
    with pytest.raises(EnclaveError):
        unseal(platform, sha256(b"different-program"), sealed)


def test_tampered_blob_rejected(platform):
    sealed = bytearray(seal(platform, MEASUREMENT, b"data"))
    sealed[20] ^= 1
    with pytest.raises(EnclaveError):
        unseal(platform, MEASUREMENT, bytes(sealed))


def test_truncated_blob_rejected(platform):
    with pytest.raises(EnclaveError):
        unseal(platform, MEASUREMENT, b"short")


def test_empty_plaintext(platform):
    sealed = seal(platform, MEASUREMENT, b"")
    assert unseal(platform, MEASUREMENT, sealed) == b""


def test_ci_restart_with_sealed_key_keeps_pk_enc(kv_chain):
    """A restarted CI that unseals its key keeps the same pk_enc, so
    clients do not need to re-check a new attestation report."""
    from repro.chain.genesis import make_genesis
    from repro.core.issuer import CertificateIssuer
    from repro.sgx.attestation import AttestationService
    from tests.conftest import fresh_vm

    ias = AttestationService(seed=b"seal-ias")
    platform = SGXPlatform(seed=b"seal-ci")
    genesis, state = make_genesis()
    first = CertificateIssuer(
        genesis, state, fresh_vm(), kv_chain.pow,
        ias=ias, platform=platform, key_seed=b"seal-key",
    )
    for block in kv_chain.blocks[1:3]:
        first.process_block(block)
    sealed = first.seal_signing_key()

    genesis2, state2 = make_genesis()
    restarted = CertificateIssuer(
        genesis2, state2, fresh_vm(), kv_chain.pow,
        ias=ias, platform=platform, sealed_key=sealed,
    )
    assert restarted.pk_enc == first.pk_enc
    assert restarted.measurement == first.measurement

    # ...and the restarted CI continues certifying from genesis state
    # with certificates clients accept under the same report data.
    from repro.core.superlight import SuperlightClient

    client = SuperlightClient(first.measurement, ias.public_key)
    for block in kv_chain.blocks[1:4]:
        certified = restarted.process_block(block)
    assert client.validate_chain(certified.block.header, certified.certificate)
    assert len(client._verified_reports) == 1


def test_sealed_key_useless_on_other_platform(kv_chain):
    from repro.chain.genesis import make_genesis
    from repro.core.issuer import CertificateIssuer
    from repro.sgx.attestation import AttestationService
    from tests.conftest import fresh_vm

    ias = AttestationService(seed=b"seal-ias-2")
    platform = SGXPlatform(seed=b"seal-ci-2")
    genesis, state = make_genesis()
    first = CertificateIssuer(
        genesis, state, fresh_vm(), kv_chain.pow,
        ias=ias, platform=platform, key_seed=b"seal-key-2",
    )
    sealed = first.seal_signing_key()
    genesis2, state2 = make_genesis()
    with pytest.raises(EnclaveError):
        CertificateIssuer(
            genesis2, state2, fresh_vm(), kv_chain.pow,
            ias=ias, platform=SGXPlatform(seed=b"thief"), sealed_key=sealed,
        )
