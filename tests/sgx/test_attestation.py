"""Quotes and the simulated IAS."""

import pytest

from repro.errors import AttestationError
from repro.crypto.hashing import sha256
from repro.sgx.attestation import AttestationService, Quote, sign_quote
from repro.sgx.platform import SGXPlatform


@pytest.fixture()
def platform():
    return SGXPlatform(seed=b"attest-tests")


@pytest.fixture()
def ias(platform):
    service = AttestationService(seed=b"attest-ias")
    service.register_platform(platform)
    return service


def test_quote_signature_verifies(platform):
    quote = sign_quote(platform, sha256(b"measurement"), b"user-data")
    assert quote.verify_hardware_signature()


def test_quote_tamper_detected(platform):
    quote = sign_quote(platform, sha256(b"measurement"), b"user-data")
    tampered = Quote(
        measurement=sha256(b"other"),
        report_data=quote.report_data,
        platform_key=quote.platform_key,
        signature=quote.signature,
    )
    assert not tampered.verify_hardware_signature()


def test_attest_issues_verifiable_report(platform, ias):
    quote = sign_quote(platform, sha256(b"measurement"), b"user-data")
    report = ias.attest(quote)
    assert report.verify(ias.public_key)
    assert report.measurement == quote.measurement
    assert report.report_data == b"user-data"


def test_report_rejects_wrong_ias_key(platform, ias):
    quote = sign_quote(platform, sha256(b"m"), b"d")
    report = ias.attest(quote)
    other = AttestationService(seed=b"other-ias")
    assert not report.verify(other.public_key)


def test_unknown_platform_rejected(ias):
    rogue = SGXPlatform(seed=b"rogue")
    quote = sign_quote(rogue, sha256(b"m"), b"d")
    with pytest.raises(AttestationError):
        ias.attest(quote)


def test_tampered_quote_rejected(platform, ias):
    quote = sign_quote(platform, sha256(b"m"), b"d")
    tampered = Quote(
        measurement=quote.measurement,
        report_data=b"swapped",
        platform_key=quote.platform_key,
        signature=quote.signature,
    )
    with pytest.raises(AttestationError):
        ias.attest(tampered)


def test_well_known_ias_is_deterministic():
    from repro.sgx.attestation import WELL_KNOWN_IAS

    again = AttestationService(seed=b"well-known")
    assert WELL_KNOWN_IAS.public_key == again.public_key


def test_report_size_accounting(platform, ias):
    report = ias.attest(sign_quote(platform, sha256(b"m"), b"d"))
    assert report.size_bytes() > 100
