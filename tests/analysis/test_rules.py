"""Every rule catches its planted fixture — exact id, exact line —
and stays silent on the clean twin."""


def hits(findings, rule):
    return [(f.path, f.line) for f in findings if f.rule == rule]


# -- DET01 --------------------------------------------------------------------


def test_det01_catches_wall_clock_calls(analyze_files):
    findings = analyze_files(
        {"src/repro/net/example.py": "det01_violation.py"}
    )
    assert hits(findings, "DET01") == [
        ("src/repro/net/example.py", 7),
        ("src/repro/net/example.py", 11),
    ]


def test_det01_clean_and_wallclock_module_allowed(analyze_files):
    findings = analyze_files(
        {
            "src/repro/net/example.py": "det01_clean.py",
            # The allowlisted module itself may read the wall clock.
            "src/repro/obs/wallclock.py": "det01_violation.py",
        }
    )
    assert hits(findings, "DET01") == []


# -- DET02 --------------------------------------------------------------------


def test_det02_catches_unseeded_randomness(analyze_files):
    findings = analyze_files(
        {"src/repro/net/example.py": "det02_violation.py"}
    )
    assert hits(findings, "DET02") == [
        ("src/repro/net/example.py", 8),
        ("src/repro/net/example.py", 12),
    ]


def test_det02_seeded_stream_and_crypto_allowed(analyze_files):
    findings = analyze_files(
        {
            "src/repro/net/example.py": "det02_clean.py",
            # crypto/ is the one legitimate os.urandom consumer.
            "src/repro/crypto/keys.py": "det02_violation.py",
        }
    )
    assert hits(findings, "DET02") == []


# -- VER01 --------------------------------------------------------------------


def test_ver01_catches_unverified_adoption(analyze_files):
    findings = analyze_files(
        {"src/repro/core/superlight.py": "ver01_violation.py"}
    )
    assert hits(findings, "VER01") == [
        ("src/repro/core/superlight.py", 9),
    ]


def test_ver01_verified_adoption_is_clean(analyze_files):
    findings = analyze_files(
        {"src/repro/core/superlight.py": "ver01_clean.py"}
    )
    assert hits(findings, "VER01") == []


def test_ver01_only_fires_in_trust_scopes(analyze_files):
    findings = analyze_files(
        {"src/repro/net/example.py": "ver01_violation.py"}
    )
    assert hits(findings, "VER01") == []


# -- ERR01 --------------------------------------------------------------------


def test_err01_catches_taxonomy_holes_and_untyped_raises(analyze_files):
    findings = analyze_files(
        {
            "src/repro/errors.py": "err01_errors_violation.py",
            "src/repro/net/raiser.py": "err01_raiser_violation.py",
        }
    )
    assert hits(findings, "ERR01") == [
        ("src/repro/errors.py", 8),  # MissingCodeError: no own code
        ("src/repro/errors.py", 16),  # SecondError: duplicate code
        ("src/repro/net/raiser.py", 7),  # bare ReproError
        ("src/repro/net/raiser.py", 11),  # unregistered *Error
    ]


def test_err01_clean_taxonomy_and_typed_raises(analyze_files):
    findings = analyze_files(
        {
            "src/repro/errors.py": "err01_errors_clean.py",
            "src/repro/net/raiser.py": "err01_raiser_clean.py",
        }
    )
    assert hits(findings, "ERR01") == []


def test_err01_ignores_test_modules(analyze_files):
    findings = analyze_files(
        {
            "src/repro/errors.py": "err01_errors_clean.py",
            "tests/net/test_raiser.py": "err01_raiser_violation.py",
        }
    )
    assert hits(findings, "ERR01") == []


# -- BND01 --------------------------------------------------------------------


def test_bnd01_catches_unbounded_container(analyze_files):
    findings = analyze_files(
        {"src/repro/net/rpc.py": "bnd01_violation.py"}
    )
    assert hits(findings, "BND01") == [("src/repro/net/rpc.py", 6)]


def test_bnd01_eviction_maxlen_and_heappop_count_as_bounds(analyze_files):
    findings = analyze_files({"src/repro/net/rpc.py": "bnd01_clean.py"})
    assert hits(findings, "BND01") == []


def test_bnd01_only_fires_in_bounded_scopes(analyze_files):
    findings = analyze_files(
        {"src/repro/chain/example.py": "bnd01_violation.py"}
    )
    assert hits(findings, "BND01") == []


# -- WIRE01 -------------------------------------------------------------------


def test_wire01_catches_mutable_and_untested_messages(analyze_files):
    findings = analyze_files(
        {"src/repro/net/messages.py": "wire01_violation.py"}
    )
    assert hits(findings, "WIRE01") == [
        ("src/repro/net/messages.py", 7),  # MutableMessage: not frozen
        ("src/repro/net/messages.py", 7),  # MutableMessage: no test ref
        ("src/repro/net/messages.py", 12),  # UntestedMessage: no test ref
    ]


def test_wire01_frozen_and_referenced_is_clean(analyze_files):
    findings = analyze_files(
        {
            "src/repro/net/messages.py": "wire01_clean.py",
            "tests/net/test_roundtrip.py": (
                "from repro.net.messages import TestedMessage\n\n\n"
                "def test_round_trip():\n"
                "    assert TestedMessage(seq=1).seq == 1\n"
            ),
        }
    )
    assert hits(findings, "WIRE01") == []


# -- OBS01 --------------------------------------------------------------------


def test_obs01_catches_bad_metric_names(analyze_files):
    findings = analyze_files(
        {"src/repro/net/example.py": "obs01_violation.py"}
    )
    assert hits(findings, "OBS01") == [
        ("src/repro/net/example.py", 7),  # single segment, uppercase
        ("src/repro/net/example.py", 8),  # f-string with no static prefix
    ]


def test_obs01_grammar_conforming_names_are_clean(analyze_files):
    findings = analyze_files(
        {"src/repro/net/example.py": "obs01_clean.py"}
    )
    assert hits(findings, "OBS01") == []


# -- CAT01 --------------------------------------------------------------------


def test_cat01_catches_both_directions(analyze_files):
    findings = analyze_files(
        {
            "src/repro/fault/crashpoints.py": "cat01_catalog_violation.py",
            "src/repro/storage/wal.py": "cat01_planter_violation.py",
        }
    )
    assert hits(findings, "CAT01") == [
        # cataloged but planted nowhere
        ("src/repro/fault/crashpoints.py", 5),
        # planted but not cataloged
        ("src/repro/storage/wal.py", 8),
    ]


def test_cat01_planted_catalog_is_clean(analyze_files):
    findings = analyze_files(
        {
            "src/repro/fault/crashpoints.py": "cat01_catalog_clean.py",
            "src/repro/storage/wal.py": "cat01_planter_clean.py",
        }
    )
    assert hits(findings, "CAT01") == []
