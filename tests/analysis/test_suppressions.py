"""The inline-suppression contract: justified allows silence, bare
allows are themselves findings."""

from repro.analysis.findings import (
    Finding,
    parse_suppressions,
    suppression_for,
)


def rules(findings):
    return [f.rule for f in findings]


def test_justified_suppression_silences_the_finding(analyze_files):
    findings = analyze_files(
        {"src/repro/net/example.py": "sup_justified.py"}
    )
    assert rules(findings) == []


def test_unjustified_suppression_reports_both(analyze_files):
    findings = analyze_files(
        {"src/repro/net/example.py": "sup_unjustified.py"}
    )
    # The original finding survives AND the bare allow is flagged.
    assert sorted(rules(findings)) == ["DET01", "SUP01"]
    sup = next(f for f in findings if f.rule == "SUP01")
    assert sup.line == 7
    assert "no justification" in sup.message


def test_suppression_only_covers_its_own_rule(analyze_files):
    source = (
        "import time\n"
        "\n"
        "\n"
        "def stamp() -> float:\n"
        "    # repro: allow[BND01] wrong rule for this line\n"
        "    return time.time()\n"
    )
    findings = analyze_files({"src/repro/net/example.py": source})
    assert rules(findings) == ["DET01"]


def test_parse_suppressions_comment_above_and_same_line():
    lines = [
        "# repro: allow[DET01] measurement only",
        "x = time.time()",
        "y = time.time()  # repro: allow[DET01, DET02] both rules",
    ]
    sups = parse_suppressions(lines)
    assert set(sups) == {1, 3}
    assert sups[1].rules == ("DET01",)
    assert sups[1].justified
    assert sups[3].rules == ("DET01", "DET02")

    finding_line2 = Finding(rule="DET01", path="p", line=2, message="m")
    assert suppression_for(sups, finding_line2) is sups[1]
    finding_line3 = Finding(rule="DET02", path="p", line=3, message="m")
    assert suppression_for(sups, finding_line3) is sups[3]
    uncovered = Finding(rule="VER01", path="p", line=3, message="m")
    assert suppression_for(sups, uncovered) is None
