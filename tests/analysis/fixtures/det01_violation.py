"""DET01 fixture: wall-clock reads in library logic."""

import time


def stamp() -> float:
    return time.time()


def wait() -> None:
    time.sleep(0.1)
