"""BND01 clean fixture: every container shows a bound."""

import heapq
from collections import deque


class Client:
    def __init__(self) -> None:
        self.responses = {}
        self.recent = deque(maxlen=16)
        self.queue = []

    def sweep(self) -> None:
        while len(self.responses) > 4:
            self.responses.pop(next(iter(self.responses)))

    def drain(self):
        return heapq.heappop(self.queue)
