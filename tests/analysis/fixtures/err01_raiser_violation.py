"""ERR01 fixture: untyped raise sites."""

from repro.errors import ReproError


def fail() -> None:
    raise ReproError("bare base class")


def fail_unregistered() -> None:
    raise UnregisteredError("not in the taxonomy")
