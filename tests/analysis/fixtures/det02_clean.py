"""DET02 clean fixture: a named, seeded stream."""

import random


def jitter(seed: int) -> float:
    return random.Random(seed).random()
