"""DET01 clean fixture: wall time via the audited helper."""

from repro.obs.wallclock import now_s


def stamp() -> float:
    return now_s()
