"""OBS01 clean fixture: component.metric names."""

from repro import obs


def record(method: str) -> None:
    obs.inc("rpc.server.served")
    obs.observe(f"rpc.server.handle_ms.{method}", 1.0)
