"""Suppression fixture: a justified allow silences the finding."""

import time


def stamp() -> float:
    # repro: allow[DET01] fixture demonstrating a justified suppression
    return time.time()
