"""ERR01 fixture: taxonomy holes (missing and duplicate codes)."""


class ReproError(Exception):
    code = "error"


class MissingCodeError(ReproError):
    pass


class FirstError(ReproError):
    code = "dup"


class SecondError(ReproError):
    code = "dup"
