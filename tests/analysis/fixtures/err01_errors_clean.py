"""ERR01 clean fixture: every class owns a unique code."""


class ReproError(Exception):
    code = "error"


class FirstError(ReproError):
    code = "first"


class SecondError(ReproError):
    code = "second"
