"""CAT01 clean fixture catalog."""

CATALOG = (
    "wal.append.pre_write",
)
