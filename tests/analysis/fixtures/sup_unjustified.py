"""Suppression fixture: an allow with no reason is itself a finding."""

import time


def stamp() -> float:
    return time.time()  # repro: allow[DET01]
