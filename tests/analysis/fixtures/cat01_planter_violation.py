"""CAT01 fixture: plants one cataloged and one unknown point."""

from repro.fault.crashpoints import crashpoint


def append() -> None:
    crashpoint("wal.append.pre_write")
    crashpoint("typo.point")
