"""WIRE01 fixture: mutable and untested wire messages."""

from dataclasses import dataclass


@dataclass
class MutableMessage:
    seq: int


@dataclass(frozen=True, slots=True)
class UntestedMessage:
    seq: int
