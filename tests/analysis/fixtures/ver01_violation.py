"""VER01 fixture: trusted-state adoption with no verification."""


class SuperlightClient:
    def __init__(self) -> None:
        self.latest_header = None

    def adopt(self, header) -> None:
        self.latest_header = header
