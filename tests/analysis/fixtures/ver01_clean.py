"""VER01 clean fixture: verification dominates the adoption."""


class SuperlightClient:
    def __init__(self) -> None:
        self.latest_header = None

    def adopt(self, header, cert) -> None:
        self._check_certificate(cert)
        self.latest_header = header

    def _check_certificate(self, cert) -> None:
        if cert is None:
            raise ValueError("no certificate")
