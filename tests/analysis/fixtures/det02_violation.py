"""DET02 fixture: unseeded randomness in library code."""

import os
import random


def jitter() -> float:
    return random.random()


def token() -> bytes:
    return os.urandom(8)
