"""ERR01 clean fixture: raise sites use taxonomy members."""

from repro.errors import FirstError


def fail() -> None:
    raise FirstError("typed")
