"""CAT01 fixture catalog with a never-planted entry."""

CATALOG = (
    "wal.append.pre_write",
    "never.planted.point",
)
