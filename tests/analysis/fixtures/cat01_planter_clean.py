"""CAT01 clean fixture: every plant is cataloged."""

from repro.fault.crashpoints import crashpoint


def append() -> None:
    crashpoint("wal.append.pre_write")
