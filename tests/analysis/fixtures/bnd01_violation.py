"""BND01 fixture: an unbounded container on a long-lived class."""


class Client:
    def __init__(self) -> None:
        self.pending = {}
