"""OBS01 fixture: metric names off the grammar."""

from repro import obs


def record(method: str) -> None:
    obs.inc("BadName")
    obs.observe(f"{method}.handle_ms", 1.0)
