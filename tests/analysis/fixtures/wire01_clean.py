"""WIRE01 clean fixture: frozen, and referenced by a test."""

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class TestedMessage:
    seq: int
