"""Baseline diff semantics and the ``python -m repro.analysis`` CLI."""

import json

import pytest

from repro.analysis import baseline
from repro.analysis.findings import Finding
from repro.analysis.runner import main


def finding(rule="DET01", path="src/repro/x.py", message="m", line=3):
    return Finding(rule=rule, path=path, line=line, message=message)


# -- diff semantics -----------------------------------------------------------


def test_diff_splits_new_accepted_and_stale():
    known = finding(message="accepted")
    fresh = finding(message="fresh")
    entries = [
        {"fingerprint": known.fingerprint(), "rule": known.rule},
        {"fingerprint": "0" * 16, "rule": "BND01", "message": "gone"},
    ]
    split = baseline.diff([known, fresh], entries)
    assert split.accepted == [known]
    assert split.new == [fresh]
    assert [e["message"] for e in split.stale] == ["gone"]


def test_fingerprint_ignores_line_numbers():
    # Shifting code may not churn the baseline...
    assert finding(line=3).fingerprint() == finding(line=99).fingerprint()
    # ...but a changed message (or path, or rule) is a new finding.
    assert (
        finding(message="a").fingerprint() != finding(message="b").fingerprint()
    )


def test_save_load_round_trip(tmp_path):
    path = tmp_path / "analysis-baseline.json"
    baseline.save(path, [finding()])
    entries = baseline.load(path)
    assert len(entries) == 1
    assert entries[0]["fingerprint"] == finding().fingerprint()
    assert baseline.load(tmp_path / "absent.json") == []


# -- CLI behaviour ------------------------------------------------------------


def write_violation(tmp_path):
    target = tmp_path / "src" / "repro" / "net" / "example.py"
    target.parent.mkdir(parents=True)
    target.write_text("import time\n\nx = time.time()\n", encoding="utf-8")


def test_cli_fails_on_new_findings(tmp_path, capsys):
    write_violation(tmp_path)
    code = main(["--root", str(tmp_path), "src"])
    out = capsys.readouterr().out
    assert code == 1
    assert "DET01" in out
    assert "1 new" in out


def test_cli_update_baseline_then_clean_then_stale(tmp_path, capsys):
    write_violation(tmp_path)
    assert main(["--root", str(tmp_path), "--update-baseline", "src"]) == 0

    # Baselined: the same finding no longer fails the run.
    assert main(["--root", str(tmp_path), "src"]) == 0
    assert "1 baselined" in capsys.readouterr().out

    # Fixing the violation strands the baseline entry: stale, loud.
    (tmp_path / "src" / "repro" / "net" / "example.py").write_text(
        "x = 1\n", encoding="utf-8"
    )
    assert main(["--root", str(tmp_path), "src"]) == 1
    assert "stale baseline entry" in capsys.readouterr().out


def test_cli_no_baseline_ignores_the_file(tmp_path, capsys):
    write_violation(tmp_path)
    assert main(["--root", str(tmp_path), "--update-baseline", "src"]) == 0
    assert main(["--root", str(tmp_path), "--no-baseline", "src"]) == 1
    assert "DET01" in capsys.readouterr().out


def test_cli_json_output(tmp_path, capsys):
    write_violation(tmp_path)
    code = main(["--root", str(tmp_path), "--json", "src"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert [f["rule"] for f in payload["new"]] == ["DET01"]
    assert payload["new"][0]["line"] == 3
    assert payload["stale_baseline"] == []


def test_cli_rule_filter(tmp_path, capsys):
    write_violation(tmp_path)
    assert main(["--root", str(tmp_path), "--rule", "BND01", "src"]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_cli_accepts_absolute_paths_under_the_root(tmp_path, capsys):
    write_violation(tmp_path)
    target = tmp_path / "src" / "repro" / "net"
    code = main(["--root", str(tmp_path), str(target)])
    out = capsys.readouterr().out
    assert code == 1
    assert "src/repro/net/example.py" in out


def test_cli_refuses_absolute_paths_outside_the_root(tmp_path, capsys):
    write_violation(tmp_path)
    elsewhere = tmp_path / "elsewhere"
    elsewhere.mkdir()
    with pytest.raises(SystemExit) as excinfo:
        main(["--root", str(elsewhere), str(tmp_path / "src")])
    assert excinfo.value.code == 2
    assert "outside the analysis root" in capsys.readouterr().err
