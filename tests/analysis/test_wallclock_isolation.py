"""DET01's semantic half: the sim fingerprint is wall-clock blind.

The static rule pins every wall-clock read into
:mod:`repro.obs.wallclock`; this test proves the invariant the rule
exists for — jittering that one module's clock source arbitrarily
must not move a deterministic simulation's fingerprint, because wall
time only ever feeds observations, never logic.
"""

import random

from repro.obs import wallclock
from repro.sim.shrink import run_sim


class JitteryClock:
    """A perf_counter that lurches forward by random amounts."""

    def __init__(self, seed: int) -> None:
        self._rng = random.Random(seed)
        self._now = 0.0

    def perf_counter(self) -> float:
        self._now += self._rng.uniform(0.0, 120.0)
        return self._now


def test_sim_fingerprint_is_wall_clock_independent(monkeypatch):
    reference = run_sim(17, 30).fingerprint

    for clock_seed in (1, 2):
        monkeypatch.setattr(wallclock, "time", JitteryClock(clock_seed))
        assert run_sim(17, 30).fingerprint == reference


def test_wallclock_helpers_route_through_one_source(monkeypatch):
    ticks = iter([10.0, 10.5, 12.0, 13.5])
    monkeypatch.setattr(
        wallclock, "time", type("T", (), {"perf_counter": staticmethod(lambda: next(ticks))})
    )
    started = wallclock.now_s()
    assert started == 10.0
    assert wallclock.elapsed_s(started) == 0.5
    assert wallclock.elapsed_ms(started) == 2000.0
    assert wallclock.now_ms() == 13500.0
