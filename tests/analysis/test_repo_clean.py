"""The real repo passes its own analyzer.

This is the fifth test layer eating its own dog food: the full checker
stack over the actual ``src/`` and ``tests/`` trees must produce
nothing beyond the checked-in baseline — which this repo keeps empty,
so genuine violations are fixed (or carry a justified inline
suppression), never accumulated.
"""

from pathlib import Path

from repro.analysis import baseline
from repro.analysis.runner import analyze

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_repo_analysis_is_clean_against_baseline():
    findings = analyze(REPO_ROOT)
    entries = baseline.load(REPO_ROOT / baseline.DEFAULT_BASELINE)
    split = baseline.diff(findings, entries)
    assert not split.new, "\n".join(f.render() for f in split.new)
    assert not split.stale, split.stale


def test_checked_in_baseline_is_empty():
    entries = baseline.load(REPO_ROOT / baseline.DEFAULT_BASELINE)
    assert entries == []
