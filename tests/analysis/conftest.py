"""Shared plumbing for the analyzer's own tests.

Fixture snippets live in ``fixtures/`` — a directory name the runner's
discovery deliberately skips, so the planted violations never fail
``make analyze`` on the real repo.  Tests copy a snippet to a
module-path-shaped location under ``tmp_path`` (the checkers scope
themselves by dotted module name) and run the real checker stack on
the resulting miniature project.
"""

from pathlib import Path

import pytest

from repro.analysis.runner import build_project, discover, run_checkers

FIXTURES = Path(__file__).parent / "fixtures"


def fixture_source(name: str) -> str:
    return (FIXTURES / name).read_text(encoding="utf-8")


@pytest.fixture
def analyze_files(tmp_path):
    """Write ``{relpath: fixture-name-or-source}`` and run the checkers."""

    def run(files: dict[str, str]) -> list:
        roots = set()
        for relpath, content in files.items():
            if content.endswith(".py"):
                content = fixture_source(content)
            target = tmp_path / relpath
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(content, encoding="utf-8")
            roots.add(relpath.split("/", 1)[0])
        project = build_project(
            tmp_path, discover(tmp_path, sorted(roots))
        )
        return run_checkers(project)

    return run
