PYTHON ?= python

.PHONY: test bench lint selftest check metrics

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

check: lint test

bench:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/ --benchmark-only

lint:
	bash scripts/lint.sh

selftest:
	PYTHONPATH=src $(PYTHON) -m repro selftest

metrics:
	PYTHONPATH=src $(PYTHON) -m repro metrics
