PYTHON ?= python

.PHONY: test bench lint selftest check metrics proptest

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

# Dependency-free property tests (tests/proptest): deterministic by
# default (fixed seed); REPRO_PROPTEST_CASES=n deepens the run and
# REPRO_PROPTEST_SEED=n explores a different stream.  Failures print a
# one-case replay command.
proptest:
	PYTHONPATH=src $(PYTHON) -m pytest tests/proptest -q

check: lint test

bench:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/ --benchmark-only

lint:
	bash scripts/lint.sh

selftest:
	PYTHONPATH=src $(PYTHON) -m repro selftest

metrics:
	PYTHONPATH=src $(PYTHON) -m repro metrics
