PYTHON ?= python

.PHONY: test bench lint selftest check metrics proptest chaos

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

# Dependency-free property tests (tests/proptest): deterministic by
# default (fixed seed); REPRO_PROPTEST_CASES=n deepens the run and
# REPRO_PROPTEST_SEED=n explores a different stream.  Failures print a
# one-case replay command.
proptest:
	PYTHONPATH=src $(PYTHON) -m pytest tests/proptest -q

# Crash-injection sweep (tests/fault): crash the certification workload
# at every cataloged crashpoint, recover from the WAL + sealed
# checkpoint, and require byte-identical certificates.  Deterministic by
# default; REPRO_CHAOS_CASES=n adds randomized (point, hit, seed) cases,
# REPRO_CHAOS_SEED=n explores a different stream, and
# REPRO_CHAOS_REPLAY=point:hit:seed reruns exactly one case (failures
# print the replay command).
chaos:
	PYTHONPATH=src $(PYTHON) -m pytest tests/fault -q

check: lint test chaos

bench:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/ --benchmark-only

lint:
	bash scripts/lint.sh

selftest:
	PYTHONPATH=src $(PYTHON) -m repro selftest

metrics:
	PYTHONPATH=src $(PYTHON) -m repro metrics
