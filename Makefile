PYTHON ?= python

.PHONY: test bench lint analyze selftest check metrics proptest chaos fleet-bench fleet-smoke push-bench push-smoke overload-bench overload-smoke sim sim-smoke determinism

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

# Dependency-free property tests (tests/proptest): deterministic by
# default (fixed seed); REPRO_PROPTEST_CASES=n deepens the run and
# REPRO_PROPTEST_SEED=n explores a different stream.  Failures print a
# one-case replay command.
proptest:
	PYTHONPATH=src $(PYTHON) -m pytest tests/proptest -q

# Crash-injection sweep (tests/fault): crash the certification workload
# at every cataloged crashpoint, recover from the WAL + sealed
# checkpoint, and require byte-identical certificates.  Deterministic by
# default; REPRO_CHAOS_CASES=n adds randomized (point, hit, seed) cases,
# REPRO_CHAOS_SEED=n explores a different stream, and
# REPRO_CHAOS_REPLAY=point:hit:seed reruns exactly one case (failures
# print the replay command).
chaos:
	PYTHONPATH=src $(PYTHON) -m pytest tests/fault -q

# Whole-system deterministic simulation (repro.sim): one seeded
# schedule drives the full stack — chain, durable issuer, WAL,
# gateway fleet, hub, mixed client fleet, injected faults — with
# global invariants checked after every event.  Knobs:
# REPRO_SIM_SEED / REPRO_SIM_EVENTS deepen or reseed the pytest runs;
# REPRO_SIM_REPLAY=seed:events reruns one case (failures print it);
# REPRO_SIM_CANARY arms a deliberately-broken invariant.
sim:
	PYTHONPATH=src $(PYTHON) -m repro sim --events 500
	PYTHONPATH=src $(PYTHON) -m pytest tests/sim -q

# A quick slice of the same harness, as a smoke tier for `make check`:
# both the default mix and the saturation-heavy overload profile.
sim-smoke:
	PYTHONPATH=src $(PYTHON) -m repro sim --events 120
	PYTHONPATH=src $(PYTHON) -m repro sim --events 120 --profile overload

# Run the same sim seed twice and diff the event-log fingerprints.
determinism:
	bash scripts/check_determinism.sh

check: lint analyze test chaos sim-smoke determinism fleet-smoke push-smoke overload-smoke

bench:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/ --benchmark-only

# Fleet-scaling benchmark (benchmarks/test_fleet_scaling.py): modeled
# query throughput vs replica count, plus the warm verified-answer
# cache doing zero round trips.  REPRO_FLEET_QUERIES=n sizes the query
# batch (default 24); REPRO_BENCH_OUT=dir persists records as JSON.
fleet-bench:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_fleet_scaling.py -q -s

# The same sweep at a tiny batch size, as a smoke tier for `make check`.
fleet-smoke:
	REPRO_FLEET_QUERIES=8 PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_fleet_scaling.py -q

# Push-vs-poll benchmark (benchmarks/test_push_vs_poll.py): total RPC
# round trips to keep a client fleet at the certified tip, streamed vs
# polled, plus the disconnect/resync byte-identity check.
# REPRO_PUSH_CLIENTS=n sizes the fleet (default 64) and
# REPRO_PUSH_BLOCKS=n the stream length (default 12).
push-bench:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_push_vs_poll.py -q -s

# The same run with a small fleet, as a smoke tier for `make check`.
push-smoke:
	REPRO_PUSH_CLIENTS=8 PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_push_vs_poll.py -q

# Overload-resilience benchmark (benchmarks/test_overload.py): goodput
# under an open-loop 5x offered load with admission control + deadline
# propagation, and the un-hedged vs hedged slow-replica tail.
# REPRO_OVERLOAD_ARRIVALS=n sizes the arrival process (default 600).
overload-bench:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_overload.py -q -s

# The same scenarios with a short arrival process, for `make check`.
overload-smoke:
	REPRO_OVERLOAD_ARRIVALS=200 PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_overload.py -q

lint:
	bash scripts/lint.sh

# Dependency-free AST invariant linter (src/repro/analysis): wall-clock
# and randomness hygiene (DET01/DET02), verification-before-adoption
# (VER01), error-taxonomy registration (ERR01), bounded client/network
# state (BND01), wire-message round-trip coverage (WIRE01), metric
# naming (OBS01), crash-catalog sync (CAT01).  Fails on any finding
# not in analysis-baseline.json (kept empty) and on stale baseline
# entries.  See docs/analysis.md.
analyze:
	PYTHONPATH=src $(PYTHON) -m repro.analysis

selftest:
	PYTHONPATH=src $(PYTHON) -m repro selftest

metrics:
	PYTHONPATH=src $(PYTHON) -m repro metrics
