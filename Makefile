PYTHON ?= python

.PHONY: test bench lint selftest

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

bench:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/ --benchmark-only

lint:
	bash scripts/lint.sh

selftest:
	PYTHONPATH=src $(PYTHON) -m repro selftest
