#!/usr/bin/env bash
# Run the whole-system simulation twice with the same seed and diff the
# event logs: the determinism contract (same seed => byte-identical run)
# that replay and shrink-to-prefix rest on.
#
#   REPRO_SIM_SEED    seed to run twice   (default 2026)
#   REPRO_SIM_EVENTS  schedule length     (default 200)
set -euo pipefail
cd "$(dirname "$0")/.."

SEED="${REPRO_SIM_SEED:-2026}"
EVENTS="${REPRO_SIM_EVENTS:-200}"
PYTHON="${PYTHON:-python}"

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

run() {
    PYTHONPATH=src "$PYTHON" -m repro sim \
        --seed "$SEED" --events "$EVENTS" --verbose > "$1"
}

echo "sim determinism: seed=$SEED events=$EVENTS (run 1/2)..."
run "$workdir/first.log"
echo "sim determinism: seed=$SEED events=$EVENTS (run 2/2)..."
run "$workdir/second.log"

if ! diff -u "$workdir/first.log" "$workdir/second.log"; then
    echo "DETERMINISM FAILURE: the same seed produced different event logs"
    exit 1
fi

grep "event-log fingerprint:" "$workdir/first.log"
echo "deterministic: both runs byte-identical"
