#!/usr/bin/env bash
# Run the whole-system simulation twice with the same seed and diff the
# event logs: the determinism contract (same seed => byte-identical run)
# that replay and shrink-to-prefix rest on.
#
#   REPRO_SIM_SEED    seed to run twice   (default 2026)
#   REPRO_SIM_EVENTS  schedule length     (default 200)
#
# Both event mixes are exercised: the default "mixed" profile and the
# saturation-heavy "overload" profile (bursts, deadline-bounded
# batches, slow replicas) — jittered backoff, hedging, and breaker
# timing must all come from seeded streams, never wall time.
set -euo pipefail
cd "$(dirname "$0")/.."

SEED="${REPRO_SIM_SEED:-2026}"
EVENTS="${REPRO_SIM_EVENTS:-200}"
PYTHON="${PYTHON:-python}"

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

run() {
    PYTHONPATH=src "$PYTHON" -m repro sim \
        --seed "$SEED" --events "$EVENTS" --profile "$2" --verbose > "$1"
}

for profile in mixed overload; do
    echo "sim determinism: seed=$SEED events=$EVENTS profile=$profile (run 1/2)..."
    run "$workdir/first.log" "$profile"
    echo "sim determinism: seed=$SEED events=$EVENTS profile=$profile (run 2/2)..."
    run "$workdir/second.log" "$profile"

    if ! diff -u "$workdir/first.log" "$workdir/second.log"; then
        echo "DETERMINISM FAILURE: the same seed produced different event logs"
        exit 1
    fi

    grep "event-log fingerprint:" "$workdir/first.log"
done
echo "deterministic: both runs byte-identical (both profiles)"
