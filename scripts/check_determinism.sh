#!/usr/bin/env bash
# Run the whole-system simulation twice with the same seed and diff the
# event logs: the determinism contract (same seed => byte-identical run)
# that replay and shrink-to-prefix rest on.
#
#   REPRO_SIM_SEED    seed to run twice   (default 2026)
#   REPRO_SIM_EVENTS  schedule length     (default 200)
#
# Both event mixes are exercised: the default "mixed" profile and the
# saturation-heavy "overload" profile (bursts, deadline-bounded
# batches, slow replicas) — jittered backoff, hedging, and breaker
# timing must all come from seeded streams, never wall time.
set -euo pipefail
cd "$(dirname "$0")/.."

SEED="${REPRO_SIM_SEED:-2026}"
EVENTS="${REPRO_SIM_EVENTS:-200}"
PYTHON="${PYTHON:-python}"

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

run() {
    PYTHONPATH=src "$PYTHON" -m repro sim \
        --seed "$SEED" --events "$EVENTS" --profile "$2" --verbose > "$1"
}

# On divergence: fail loudly with the exact (seed, events, profile)
# triple, a bounded diff excerpt (the first divergent lines are the
# interesting ones; a full 1000-line dump buries them), and the replay
# command that reproduces one run for bisection.
DIFF_EXCERPT_LINES=40

for profile in mixed overload; do
    echo "sim determinism: seed=$SEED events=$EVENTS profile=$profile (run 1/2)..."
    run "$workdir/first.log" "$profile"
    echo "sim determinism: seed=$SEED events=$EVENTS profile=$profile (run 2/2)..."
    run "$workdir/second.log" "$profile"

    if ! diff -u "$workdir/first.log" "$workdir/second.log" > "$workdir/diff.log"; then
        echo "================================================================"
        echo "DETERMINISM FAILURE: same seed, different event logs"
        echo "  seed=$SEED events=$EVENTS profile=$profile"
        echo "================================================================"
        echo "first $DIFF_EXCERPT_LINES lines of the divergence:"
        head -n "$DIFF_EXCERPT_LINES" "$workdir/diff.log"
        total=$(wc -l < "$workdir/diff.log")
        if [ "$total" -gt "$DIFF_EXCERPT_LINES" ]; then
            echo "... ($((total - DIFF_EXCERPT_LINES)) more diff lines suppressed)"
        fi
        echo "replay one run with:"
        echo "  PYTHONPATH=src $PYTHON -m repro sim --seed $SEED --events $EVENTS --profile $profile --verbose"
        exit 1
    fi

    grep "event-log fingerprint:" "$workdir/first.log"
done
echo "deterministic: both runs byte-identical (both profiles)"
