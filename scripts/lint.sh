#!/usr/bin/env bash
# Lint the library with ruff (configured in pyproject.toml).
#
# The library has no lint-time dependencies: when ruff is not
# installed (e.g. the offline test container), this skips with a
# message instead of failing, so `make lint` is always safe to run.
set -euo pipefail
cd "$(dirname "$0")/.."

if command -v ruff >/dev/null 2>&1; then
    ruff check src tests benchmarks examples
elif python -m ruff --version >/dev/null 2>&1; then
    python -m ruff check src tests benchmarks examples
else
    echo "lint: ruff is not installed; skipping (config in pyproject.toml)"
fi

# The repo's own AST invariant linter has no dependencies, so it always
# runs (rule catalog in docs/analysis.md).
PYTHONPATH=src python -m repro.analysis
